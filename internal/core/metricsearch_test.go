package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sort"
	"sync"
	"testing"

	"repro/internal/cache"
)

func labelf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

func TestParseMetric(t *testing.T) {
	for _, name := range []string{"", "d", "D"} {
		m, err := ParseMetric(name, -1)
		if err != nil {
			t.Fatalf("ParseMetric(%q): %v", name, err)
		}
		if _, ok := m.(MetricD); !ok {
			t.Fatalf("ParseMetric(%q) = %T, want MetricD", name, m)
		}
	}
	for _, name := range []string{"dtw", "DTW"} {
		m, err := ParseMetric(name, 7)
		if err != nil {
			t.Fatalf("ParseMetric(%q): %v", name, err)
		}
		mt, ok := m.(MetricDTW)
		if !ok || mt.Window != 7 {
			t.Fatalf("ParseMetric(%q) = %#v, want MetricDTW{7}", name, m)
		}
	}
	if _, err := ParseMetric("dtw", -2); err == nil {
		t.Error("window -2 accepted")
	}
	if _, err := ParseMetric("manhattan", -1); err == nil {
		t.Error("unknown metric name accepted")
	}
}

// TestMetricFingerprintsDistinct proves metrics that define different
// result sets have different cache identities: D, unconstrained DTW, and
// each DTW window are all distinct.
func TestMetricFingerprintsDistinct(t *testing.T) {
	ms := []Metric{MetricD{}, MetricDTW{Window: -1}, MetricDTW{Window: 0}, MetricDTW{Window: 5}}
	type fp struct {
		id    byte
		param uint64
	}
	seen := map[fp]int{}
	for i, m := range ms {
		id, param := m.fingerprint()
		k := fp{id, param}
		if j, dup := seen[k]; dup {
			t.Fatalf("metrics %d and %d share fingerprint (%c, %d)", j, i, id, param)
		}
		seen[k] = i
	}
}

// metricCorpus builds a database of nseq random walks with varied lengths
// in the given dimension — lengths deliberately unequal so the DTW
// window-vs-length-difference edge cases are exercised.
func metricCorpus(t *testing.T, dim, nseq int, seed int64) (*Database, []*Sequence, *rand.Rand) {
	t.Helper()
	db := newTestDB(t, dim)
	rng := rand.New(rand.NewSource(seed))
	seqs := make([]*Sequence, nseq)
	for i := range seqs {
		s := randWalkSeq(rng, 20+rng.Intn(100), dim)
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
		seqs[i] = s
	}
	return db, seqs, rng
}

// sameMetricMatches asserts two metric result sets are identical: same
// ids in the same order, bit-identical distances.
func sameMetricMatches(t *testing.T, label string, got, want []MetricMatch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].SeqID != want[i].SeqID {
			t.Fatalf("%s: match %d is sequence %d, want %d", label, i, got[i].SeqID, want[i].SeqID)
		}
		if math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("%s: match %d (seq %d) dist %v, want bit-identical %v",
				label, i, got[i].SeqID, got[i].Dist, want[i].Dist)
		}
	}
}

// TestMetricDTWRangeNoFalseDismissal is the central equivalence proof for
// the DTW index path: across dimensions, window widths (unconstrained,
// degenerate, narrow, wide), and queries of lengths unequal to the stored
// sequences, the envelope-pruned indexed range search returns exactly the
// exhaustive-scan answer, bit for bit. Any false dismissal by the index
// bound or LB_Keogh, and any inexactness introduced by early abandoning,
// would break it.
func TestMetricDTWRangeNoFalseDismissal(t *testing.T) {
	for _, dim := range []int{2, 4, 8} {
		db, seqs, rng := metricCorpus(t, dim, 40, int64(100+dim))
		for _, window := range []int{-1, 0, 3, 20} {
			mt := MetricDTW{Window: window}
			for trial := 0; trial < 6; trial++ {
				src := seqs[rng.Intn(len(seqs))]
				qlen := 10 + rng.Intn(src.Len()-10)
				q := &Sequence{Label: "q", Points: src.Points[:qlen]}
				eps := 0.05 + rng.Float64()*0.4
				got, _, err := db.SearchMetric(q, eps, mt)
				if err != nil {
					t.Fatal(err)
				}
				want, err := db.SequentialSearchMetric(q, eps, mt)
				if err != nil {
					t.Fatal(err)
				}
				label := labelf("dim=%d window=%d trial=%d eps=%g", dim, window, trial, eps)
				sameMetricMatches(t, label, got, want)
			}
		}
	}
}

// TestMetricDRangeNoFalseDismissal is the same equivalence for MetricD:
// the Dnorm-filtered, exact-refined indexed answer equals the exhaustive
// exact-distance scan.
func TestMetricDRangeNoFalseDismissal(t *testing.T) {
	db, seqs, rng := metricCorpus(t, 3, 40, 11)
	for trial := 0; trial < 10; trial++ {
		src := seqs[rng.Intn(len(seqs))]
		qlen := 10 + rng.Intn(src.Len()-10)
		q := &Sequence{Label: "q", Points: src.Points[:qlen]}
		eps := 0.05 + rng.Float64()*0.4
		got, _, err := db.SearchMetric(q, eps, MetricD{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.SequentialSearchMetric(q, eps, MetricD{})
		if err != nil {
			t.Fatal(err)
		}
		sameMetricMatches(t, labelf("trial=%d eps=%g", trial, eps), got, want)
	}
}

// TestMetricDTWKNNNoFalseDismissal proves the best-first DTW kNN against
// brute force: exact DTW to every alignable sequence, sorted, truncated
// to k. Results are compared as (dist, id)-sorted lists so the assertion
// is insensitive to tie order but still bit-exact on distances.
func TestMetricDTWKNNNoFalseDismissal(t *testing.T) {
	for _, dim := range []int{2, 4, 8} {
		db, seqs, rng := metricCorpus(t, dim, 35, int64(200+dim))
		for _, window := range []int{-1, 0, 4, 25} {
			mt := MetricDTW{Window: window}
			for trial := 0; trial < 4; trial++ {
				src := seqs[rng.Intn(len(seqs))]
				qlen := 10 + rng.Intn(src.Len()-10)
				q := &Sequence{Label: "q", Points: src.Points[:qlen]}
				k := 1 + rng.Intn(8)
				got, err := db.SearchKNNMetric(q, k, mt)
				if err != nil {
					t.Fatal(err)
				}
				// Brute force: every finite exact distance, ranked.
				all, err := db.SequentialSearchMetric(q, math.MaxFloat64, mt)
				if err != nil {
					t.Fatal(err)
				}
				sort.Slice(all, func(a, b int) bool {
					if all[a].Dist != all[b].Dist {
						return all[a].Dist < all[b].Dist
					}
					return all[a].SeqID < all[b].SeqID
				})
				if len(all) > k {
					all = all[:k]
				}
				label := labelf("dim=%d window=%d trial=%d k=%d", dim, window, trial, k)
				if len(got) != len(all) {
					t.Fatalf("%s: %d neighbors, want %d", label, len(got), len(all))
				}
				sort.Slice(got, func(a, b int) bool {
					if got[a].Dist != got[b].Dist {
						return got[a].Dist < got[b].Dist
					}
					return got[a].SeqID < got[b].SeqID
				})
				for i := range all {
					if got[i].SeqID != all[i].SeqID ||
						math.Float64bits(got[i].Dist) != math.Float64bits(all[i].Dist) {
						t.Fatalf("%s: neighbor %d = (%d, %v), want (%d, %v)",
							label, i, got[i].SeqID, got[i].Dist, all[i].SeqID, all[i].Dist)
					}
					if got[i].Offset != 0 {
						t.Fatalf("%s: DTW neighbor %d has offset %d, want 0", label, i, got[i].Offset)
					}
				}
			}
		}
	}
}

// TestMetricDTWLowerBoundsUnderestimate is the direct Lemma-style check
// behind the equivalence: for random queries and sequences, the envelope
// index bound and LB_Keogh never exceed the exact normalized DTW
// distance, and the index bound is +Inf exactly when the window admits no
// alignment.
func TestMetricDTWLowerBoundsUnderestimate(t *testing.T) {
	const tol = 1e-9
	for _, dim := range []int{2, 5} {
		db, seqs, rng := metricCorpus(t, dim, 25, int64(300+dim))
		db.mu.RLock()
		for _, window := range []int{-1, 0, 2, 10} {
			mt := MetricDTW{Window: window}
			for trial := 0; trial < 5; trial++ {
				src := seqs[rng.Intn(len(seqs))]
				qlen := 10 + rng.Intn(src.Len()-10)
				q := &Sequence{Label: "q", Points: src.Points[:qlen]}
				sc := getScratch()
				sc.fillQueryFlat(q)
				ds := &sc.dtw
				ds.resetEnv()
				ds.buildEnvelopes(sc.qflat, q.Len(), dim, window)
				for _, g := range db.seqs {
					if g == nil {
						continue
					}
					lb := ds.dtwIndexLB(g)
					exact := sc.distanceSeq(mt, g, dim, math.Inf(1))
					if math.IsInf(lb, 1) != math.IsInf(exact, 1) {
						t.Fatalf("dim=%d window=%d: index bound inf=%v but exact inf=%v (lens %d vs %d)",
							dim, window, math.IsInf(lb, 1), math.IsInf(exact, 1), q.Len(), g.Seq.Len())
					}
					if math.IsInf(exact, 1) {
						continue
					}
					if lb > exact+tol {
						t.Fatalf("dim=%d window=%d: index bound %v exceeds exact DTW %v", dim, window, lb, exact)
					}
					if keogh := ds.lbKeogh(g, math.Inf(1)); keogh > exact+tol {
						t.Fatalf("dim=%d window=%d: LB_Keogh %v exceeds exact DTW %v", dim, window, keogh, exact)
					}
				}
				putScratch(sc)
			}
		}
		db.mu.RUnlock()
	}
}

// TestMetricDTWWindowExcludesUnalignable: with a window narrower than
// every length difference, no stored sequence aligns and both query paths
// agree on the empty answer; sequences of exactly the query's length
// remain eligible at window 0.
func TestMetricDTWWindowExcludesUnalignable(t *testing.T) {
	db := newTestDB(t, 2)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		if _, err := db.Add(randWalkSeq(rng, 60+i*5, 2)); err != nil {
			t.Fatal(err)
		}
	}
	q := randWalkSeq(rng, 30, 2) // 30 vs 60.. — difference ≥ 30 everywhere
	mt := MetricDTW{Window: 4}
	got, _, err := db.SearchMetric(q, 10, mt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("window 4 with length gaps ≥ 30 matched %d sequences", len(got))
	}
	nn, err := db.SearchKNNMetric(q, 5, mt)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 0 {
		t.Fatalf("kNN returned %d unalignable sequences", len(nn))
	}
}

// TestMetricSearchConcurrent runs the DTW equivalence from many
// goroutines at once — under -race this doubles as the data-race proof
// for the metric read path (shared tree, shared scratch pool, per-query
// envelopes).
func TestMetricSearchConcurrent(t *testing.T) {
	db, seqs, rng := metricCorpus(t, 3, 30, 17)
	type job struct {
		q   *Sequence
		eps float64
		mt  MetricDTW
	}
	jobs := make([]job, 12)
	for i := range jobs {
		src := seqs[rng.Intn(len(seqs))]
		qlen := 10 + rng.Intn(src.Len()-10)
		jobs[i] = job{
			q:   &Sequence{Label: "q", Points: src.Points[:qlen]},
			eps: 0.05 + rng.Float64()*0.3,
			mt:  MetricDTW{Window: []int{-1, 0, 5}[i%3]},
		}
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			got, _, err := db.SearchMetric(j.q, j.eps, j.mt)
			if err != nil {
				t.Error(err)
				return
			}
			want, err := db.SequentialSearchMetric(j.q, j.eps, j.mt)
			if err != nil {
				t.Error(err)
				return
			}
			if len(got) != len(want) {
				t.Errorf("concurrent: %d matches, want %d", len(got), len(want))
				return
			}
			for i := range want {
				if got[i].SeqID != want[i].SeqID ||
					math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
					t.Errorf("concurrent: match %d differs", i)
					return
				}
			}
		}(j)
	}
	wg.Wait()
}

// TestMetricCacheCrossMetricIsolation is the staleness regression for the
// fingerprint change: the same query and threshold under D, unconstrained
// DTW, and two different DTW windows are four different questions, and
// the cache must never serve one's answer for another. Before metric
// identity entered the fingerprint, the second metric's query aliased the
// first's cached result.
func TestMetricCacheCrossMetricIsolation(t *testing.T) {
	db, seqs, rng := metricCorpus(t, 3, 30, 23)
	db.SetCache(cache.New(cache.Config{}))
	src := seqs[rng.Intn(len(seqs))]
	q := &Sequence{Label: "q", Points: src.Points[:20]}
	const eps = 0.35

	metrics := []Metric{MetricD{}, MetricDTW{Window: -1}, MetricDTW{Window: 2}, MetricDTW{Window: 8}}
	first := make([][]MetricMatch, len(metrics))
	for i, m := range metrics {
		ms, st, err := db.SearchMetric(q, eps, m)
		if err != nil {
			t.Fatal(err)
		}
		if st.CacheHit {
			t.Fatalf("metric %d: first query flagged as cache hit — aliased an earlier metric's entry", i)
		}
		first[i] = ms
	}
	// Re-asking each is a hit, and each hit is that metric's own answer.
	for i, m := range metrics {
		ms, st, err := db.SearchMetric(q, eps, m)
		if err != nil {
			t.Fatal(err)
		}
		if !st.CacheHit {
			t.Fatalf("metric %d: repeat query missed the cache", i)
		}
		sameMetricMatches(t, labelf("cached metric %d", i), ms, first[i])
		want, err := db.SequentialSearchMetric(q, eps, m)
		if err != nil {
			t.Fatal(err)
		}
		sameMetricMatches(t, labelf("cached-vs-scan metric %d", i), ms, want)
	}
	// The plain Search path must also be unaffected by metric entries.
	if _, st, err := db.Search(q, eps); err != nil {
		t.Fatal(err)
	} else if st.CacheHit {
		t.Fatal("Search aliased a metric cache entry")
	}
}

// TestMetricCacheInvalidatedByWrite: a write that lands inside the cached
// DTW query's region evicts the entry, so the refreshed answer includes
// the new sequence.
func TestMetricCacheInvalidatedByWrite(t *testing.T) {
	db, seqs, _ := metricCorpus(t, 3, 20, 29)
	db.SetCache(cache.New(cache.Config{}))
	src := seqs[0]
	q := &Sequence{Label: "q", Points: src.Points[:25]}
	mt := MetricDTW{Window: -1}
	const eps = 0.5
	before, _, err := db.SearchMetric(q, eps, mt)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a near-duplicate of the query — distance ~0, inside ε.
	dup := &Sequence{Label: "dup", Points: src.Points[:25]}
	if _, err := db.Add(dup); err != nil {
		t.Fatal(err)
	}
	after, st, err := db.SearchMetric(q, eps, mt)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("query served from cache across an in-region write")
	}
	if len(after) != len(before)+1 {
		t.Fatalf("after write: %d matches, want %d", len(after), len(before)+1)
	}
}

// TestMetricDTWSearchAllocs is the DTW-path allocation gate: a warmed
// repeated no-match metric search — envelopes, tree probe, pruning
// ladder — runs entirely out of the pooled scratch.
func TestMetricDTWSearchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops Puts under -race; alloc gate needs a non-race build")
	}
	db := newTestDB(t, 4)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 30; i++ {
		if _, err := db.Add(randWalkSeq(rng, 40+rng.Intn(40), 4)); err != nil {
			t.Fatal(err)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	q := randWalkSeq(rng, 24, 4)
	for i := range q.Points {
		for k := range q.Points[i] {
			q.Points[i][k] += 50
		}
	}
	mt := MetricDTW{Window: 6}
	for i := 0; i < 3; i++ {
		ms, _, err := db.SearchMetric(q, 0.3, mt)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 0 {
			t.Fatal("query unexpectedly matched; the alloc gate needs a no-match query")
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := db.SearchMetric(q, 0.3, mt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed no-match DTW SearchMetric allocates %.1f times per run, want 0", allocs)
	}
}
