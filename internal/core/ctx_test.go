package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/geom"
)

// ctxCorpus builds a small database for the cancellation tests.
func ctxCorpus(t *testing.T, n int) (*Database, *Sequence) {
	t.Helper()
	db, err := NewDatabase(Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	var q *Sequence
	for i := 0; i < n; i++ {
		pts := make([]geom.Point, 48)
		for j := range pts {
			pts[j] = geom.Point{float64(i%7) / 7, float64(j%11) / 11}
		}
		s, err := NewSequence("s", pts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
		if q == nil {
			q = &Sequence{Label: "q", Points: s.Points[:16]}
		}
	}
	return db, q
}

// TestSearchCtxCanceled proves an already-fired context aborts both query
// paths with the context's error, before any result is produced.
func TestSearchCtxCanceled(t *testing.T) {
	db, q := ctxCorpus(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := db.SearchCtx(ctx, q, 0.2); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := db.SearchKNNCtx(ctx, q, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchKNNCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestSearchCtxDeadline proves an expired deadline surfaces as
// context.DeadlineExceeded through the wrapped error.
func TestSearchCtxDeadline(t *testing.T) {
	db, q := ctxCorpus(t, 8)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := db.SearchCtx(ctx, q, 0.2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SearchCtx past deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := db.SearchKNNBoundedCtx(ctx, q, 3, 1.0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SearchKNNBoundedCtx past deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestSearchCtxBackgroundMatchesSearch pins that the ctx variants with a
// background context are the plain methods exactly.
func TestSearchCtxBackgroundMatchesSearch(t *testing.T) {
	db, q := ctxCorpus(t, 12)
	want, wantSt, err := db.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	got, gotSt, err := db.SearchCtx(context.Background(), q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || gotSt.CandidatesDmbr != wantSt.CandidatesDmbr {
		t.Fatalf("SearchCtx(Background) diverges: %d/%d matches, %d/%d candidates",
			len(got), len(want), gotSt.CandidatesDmbr, wantSt.CandidatesDmbr)
	}
	wantNN, err := db.SearchKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotNN, err := db.SearchKNNCtx(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNN) != len(wantNN) {
		t.Fatalf("SearchKNNCtx(Background) diverges: %d vs %d neighbors", len(gotNN), len(wantNN))
	}
}
