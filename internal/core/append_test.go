package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestAppendEquivalence is the correctness heart of AppendPoints: a
// sequence grown by repeated appends must have exactly the partitioning a
// from-scratch partition of the final points produces, and its index
// entries must match.
func TestAppendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	cfg := DefaultPartitionConfig()
	for trial := 0; trial < 20; trial++ {
		full := randWalkSeq(rng, 100+rng.Intn(200), 3)

		db := newTestDB(t, 3)
		initial := 10 + rng.Intn(40)
		grown := &Sequence{Label: "grown", Points: clonePts(full.Points[:initial])}
		id, err := db.Add(grown)
		if err != nil {
			t.Fatal(err)
		}
		// Append in random-sized chunks.
		for off := initial; off < full.Len(); {
			chunk := 1 + rng.Intn(30)
			if off+chunk > full.Len() {
				chunk = full.Len() - off
			}
			if err := db.AppendPoints(id, clonePts(full.Points[off:off+chunk])); err != nil {
				t.Fatal(err)
			}
			off += chunk
		}

		g := db.Segmented(id)
		if g.Seq.Len() != full.Len() {
			t.Fatalf("trial %d: grown to %d points, want %d", trial, g.Seq.Len(), full.Len())
		}
		want, err := Partition(full, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.MBRs) != len(want) {
			t.Fatalf("trial %d: %d MBRs after appends, from-scratch %d", trial, len(g.MBRs), len(want))
		}
		for j := range want {
			if g.MBRs[j].Start != want[j].Start || g.MBRs[j].End != want[j].End ||
				!g.MBRs[j].Rect.Equal(want[j].Rect) {
				t.Fatalf("trial %d: MBR %d differs: %+v vs %+v", trial, j, g.MBRs[j], want[j])
			}
		}
		if err := g.CheckPartition(cfg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if db.NumMBRs() != len(want) {
			t.Fatalf("trial %d: index holds %d entries, want %d", trial, db.NumMBRs(), len(want))
		}
	}
}

func clonePts(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Clone()
	}
	return out
}

func TestAppendSearchable(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(111))
	s := randWalkSeq(rng, 40, 3)
	id, err := db.Add(s)
	if err != nil {
		t.Fatal(err)
	}
	tail := randWalkSeq(rng, 50, 3)
	if err := db.AppendPoints(id, tail.Points); err != nil {
		t.Fatal(err)
	}
	// A query drawn from the appended tail must be found.
	q := &Sequence{Points: tail.Points[10:35]}
	matches, _, err := db.Search(q, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.SeqID == id {
			found = true
			if !m.Interval.Contains(60) {
				t.Errorf("interval %v misses the appended region", m.Interval.Ranges())
			}
		}
	}
	if !found {
		t.Fatal("appended data not searchable")
	}
	// Exact scan agrees.
	exact, err := db.SequentialSearch(q, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 1 {
		t.Fatalf("scan found %d", len(exact))
	}
}

func TestAppendValidation(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(112))
	s := randWalkSeq(rng, 30, 3)
	id, _ := db.Add(s)
	if err := db.AppendPoints(id, nil); err != nil {
		t.Errorf("empty append = %v", err)
	}
	if err := db.AppendPoints(99, []geom.Point{{0.1, 0.2, 0.3}}); err == nil {
		t.Error("unknown id accepted")
	}
	if err := db.AppendPoints(id, []geom.Point{{0.1}}); err == nil {
		t.Error("wrong-dim point accepted")
	}
	// Failed append must leave the database searchable and consistent.
	g := db.Segmented(id)
	if err := g.CheckPartition(db.PartitionConfig()); err != nil {
		t.Fatalf("partition damaged by failed append: %v", err)
	}
	if db.NumMBRs() != len(g.MBRs) {
		t.Errorf("index entries %d != MBRs %d", db.NumMBRs(), len(g.MBRs))
	}
}

func TestAppendToRemovedSequence(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(113))
	s := randWalkSeq(rng, 30, 3)
	id, _ := db.Add(s)
	db.Remove(id)
	if err := db.AppendPoints(id, []geom.Point{{0.1, 0.2, 0.3}}); err == nil {
		t.Error("append to removed sequence accepted")
	}
}
