// Package core implements the paper's contribution: multidimensional data
// sequences, the MCOST partitioning algorithm that segments them into
// minimum bounding rectangles, the distance metrics D, Dmean, Dmbr and
// Dnorm, solution intervals, and the three-phase MBR-based similarity
// search over an R*-tree index, together with the exact sequential-scan
// baseline it is evaluated against.
package core

import (
	"errors"
	"fmt"

	"repro/internal/geom"
)

// Sequence is a multidimensional data sequence (Definition 1): a series of
// n-dimensional vectors, e.g. one color-feature point per video frame.
type Sequence struct {
	// ID identifies the sequence within a Database. Databases assign it on
	// Add; standalone sequences may leave it zero.
	ID uint32
	// Label is an optional human-readable name (file name, ticker, …).
	Label string
	// Points holds the ordered component vectors. All must share one
	// dimensionality.
	Points []geom.Point
}

// ErrEmptySequence is returned when an operation needs at least one point.
var ErrEmptySequence = errors.New("core: empty sequence")

// NewSequence validates points and wraps them in a Sequence.
func NewSequence(label string, points []geom.Point) (*Sequence, error) {
	s := &Sequence{Label: label, Points: points}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks that the sequence is non-empty and dimensionally
// consistent.
func (s *Sequence) Validate() error {
	if len(s.Points) == 0 {
		return ErrEmptySequence
	}
	dim := len(s.Points[0])
	if dim == 0 {
		return errors.New("core: zero-dimensional point")
	}
	for i, p := range s.Points {
		if len(p) != dim {
			return fmt.Errorf("core: point %d has dim %d, want %d: %w", i, len(p), dim, geom.ErrDimensionMismatch)
		}
	}
	return nil
}

// Len returns the number of points.
func (s *Sequence) Len() int { return len(s.Points) }

// Dim returns the dimensionality (0 for an empty sequence).
func (s *Sequence) Dim() int {
	if len(s.Points) == 0 {
		return 0
	}
	return len(s.Points[0])
}

// Slice returns the subsequence S[i:j] (half-open, 0-based) sharing the
// backing array, mirroring the paper's S[i:j] notation (which is 1-based
// and inclusive; callers of the public API use Go conventions).
func (s *Sequence) Slice(i, j int) []geom.Point { return s.Points[i:j] }

// Clone deep-copies the sequence.
func (s *Sequence) Clone() *Sequence {
	pts := make([]geom.Point, len(s.Points))
	for i, p := range s.Points {
		pts[i] = p.Clone()
	}
	return &Sequence{ID: s.ID, Label: s.Label, Points: pts}
}

// Bounds returns the MBR of the whole sequence.
func (s *Sequence) Bounds() geom.Rect {
	return geom.BoundingRect(s.Points)
}

// InUnitCube reports whether every point lies in [0,1]^n, the normalized
// space the paper's similarity mapping assumes.
func (s *Sequence) InUnitCube() bool {
	for _, p := range s.Points {
		if !p.InUnitCube() {
			return false
		}
	}
	return true
}
