package core

import (
	"fmt"
	"sort"
	"strings"
)

// PointRange is a half-open range [Start, End) of point indices within one
// data sequence.
type PointRange struct {
	Start, End int // half-open [Start, End) point indices
}

// Len returns the number of points in the range.
func (r PointRange) Len() int { return r.End - r.Start }

// String renders the range in half-open interval notation.
func (r PointRange) String() string { return fmt.Sprintf("[%d,%d)", r.Start, r.End) }

// IntervalSet is a normalized set of point ranges — the solution interval
// of Definition 6 (or its Dnorm approximation). Ranges are kept sorted,
// non-empty, non-overlapping and non-adjacent.
type IntervalSet struct {
	ranges []PointRange
}

// Add inserts a range, merging as needed. Empty or inverted ranges are
// ignored.
func (s *IntervalSet) Add(r PointRange) {
	if r.End <= r.Start {
		return
	}
	// Locate insertion point by Start.
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].Start > r.Start })
	// Merge with predecessor if overlapping/adjacent.
	if i > 0 && s.ranges[i-1].End >= r.Start {
		i--
		if s.ranges[i].End >= r.End {
			return // fully covered
		}
		r.Start = s.ranges[i].Start
	}
	// Absorb successors covered by r.
	j := i
	for j < len(s.ranges) && s.ranges[j].Start <= r.End {
		if s.ranges[j].End > r.End {
			r.End = s.ranges[j].End
		}
		j++
	}
	s.ranges = append(s.ranges[:i], append([]PointRange{r}, s.ranges[j:]...)...)
}

// AddSet merges every range of t into s.
func (s *IntervalSet) AddSet(t *IntervalSet) {
	for _, r := range t.ranges {
		s.Add(r)
	}
}

// Ranges returns the normalized ranges (read-only view).
func (s *IntervalSet) Ranges() []PointRange { return s.ranges }

// NumPoints returns the total number of points covered.
func (s *IntervalSet) NumPoints() int {
	var n int
	for _, r := range s.ranges {
		n += r.Len()
	}
	return n
}

// Contains reports whether point index i is covered.
func (s *IntervalSet) Contains(i int) bool {
	j := sort.Search(len(s.ranges), func(j int) bool { return s.ranges[j].End > i })
	return j < len(s.ranges) && s.ranges[j].Start <= i
}

// IntersectCount returns |s ∩ t| in points — the numerator of the paper's
// recall measure.
func (s *IntervalSet) IntersectCount(t *IntervalSet) int {
	var n, i, j int
	for i < len(s.ranges) && j < len(t.ranges) {
		a, b := s.ranges[i], t.ranges[j]
		lo, hi := max(a.Start, b.Start), min(a.End, b.End)
		if hi > lo {
			n += hi - lo
		}
		if a.End < b.End {
			i++
		} else {
			j++
		}
	}
	return n
}

// IsEmpty reports whether the set covers no points.
func (s *IntervalSet) IsEmpty() bool { return len(s.ranges) == 0 }

// String renders the set as a brace-wrapped list of its ranges.
func (s *IntervalSet) String() string {
	if len(s.ranges) == 0 {
		return "{}"
	}
	parts := make([]string, len(s.ranges))
	for i, r := range s.ranges {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
