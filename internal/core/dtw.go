package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// DTW computes the dynamic time warping distance between two
// multidimensional point sequences: the minimum total Euclidean point
// distance over all monotone alignments that may locally accelerate or
// decelerate ("time warping ... permits local accelerations and
// decelerations", Yi et al., cited in the paper's Section 2). window is
// the Sakoe–Chiba band half-width constraining |i−j|; window < 0 means
// unconstrained.
//
// DTW is not a lower-boundable metric in this system — it is offered as a
// refinement step: range-search with D (fast, no false dismissals), then
// re-rank the survivors with DTW when elastic matching is wanted.
func DTW(a, b []geom.Point, window int) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("core: DTW of empty sequence (%d, %d points)", n, m)
	}
	if window >= 0 && window < abs(n-m) {
		// A band narrower than the length difference admits no path.
		return 0, fmt.Errorf("core: DTW window %d narrower than length difference %d", window, abs(n-m))
	}
	// Two-row dynamic program; rows indexed by i over a, columns by j
	// over b.
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = math.Inf(1)
		}
		lo, hi := 1, m
		if window >= 0 {
			if l := i - window; l > lo {
				lo = l
			}
			if h := i + window; h < hi {
				hi = h
			}
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1].Dist(b[j-1])
			best := prev[j] // insertion (advance a only)
			if prev[j-1] < best {
				best = prev[j-1] // match (advance both)
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion (advance b only)
			}
			cur[j] = d + best
		}
		prev, cur = cur, prev
	}
	total := prev[m]
	if math.IsInf(total, 1) {
		return 0, fmt.Errorf("core: DTW window %d admits no alignment for lengths %d, %d", window, n, m)
	}
	// Normalize by the longer length so values are comparable to the mean
	// distance D on equal-length inputs.
	denom := n
	if m > denom {
		denom = m
	}
	return total / float64(denom), nil
}

// RefineDTW re-ranks range-search matches by DTW distance between the
// query and each match's solution-interval points, ascending. Matches
// whose window admits no alignment keep their original relative order at
// the end. This composes the paper's pruning machinery with the elastic
// metric its related-work section discusses.
func RefineDTW(q *Sequence, matches []Match, window int) []Match {
	type scored struct {
		m    Match
		d    float64
		ok   bool
		rank int
	}
	ss := make([]scored, len(matches))
	for i, m := range matches {
		ss[i] = scored{m: m, rank: i}
		// Compare against the densest matching range (the longest one).
		var best PointRange
		for _, r := range m.Interval.Ranges() {
			if r.Len() > best.Len() {
				best = r
			}
		}
		if best.Len() == 0 {
			continue
		}
		d, err := DTW(q.Points, m.Seq.Points[best.Start:best.End], window)
		if err == nil {
			ss[i].d, ss[i].ok = d, true
		}
	}
	out := make([]Match, 0, len(matches))
	// Stable selection: scored ascending first, then unscored in input
	// order.
	for {
		bestIdx := -1
		for i := range ss {
			if ss[i].rank < 0 || !ss[i].ok {
				continue
			}
			if bestIdx < 0 || ss[i].d < ss[bestIdx].d {
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		out = append(out, ss[bestIdx].m)
		ss[bestIdx].rank = -1
	}
	for i := range ss {
		if ss[i].rank >= 0 && !ss[i].ok {
			out = append(out, ss[i].m)
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
