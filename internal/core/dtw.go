package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// DTW computes the dynamic time warping distance between two
// multidimensional point sequences: the minimum total Euclidean point
// distance over all monotone alignments that may locally accelerate or
// decelerate ("time warping ... permits local accelerations and
// decelerations", Yi et al., cited in the paper's Section 2). window is
// the Sakoe–Chiba band half-width constraining |i−j|; window < 0 means
// unconstrained.
//
// DTW is served through the index by the MetricDTW search path
// (SearchMetric, SearchKNNMetric), which pairs it with envelope lower
// bounds so there are no false dismissals; this function is the exact
// distance itself, also usable directly and as the RefineDTW re-rank step.
//
// The dynamic program runs out of the pooled search scratch — the two DP
// rows and the flat point copies are reused across calls, so a warmed
// steady state computes DTW with zero allocations (see TestDTWAllocs).
func DTW(a, b []geom.Point, window int) (float64, error) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, fmt.Errorf("core: DTW of empty sequence (%d, %d points)", n, m)
	}
	if window >= 0 && window < abs(n-m) {
		// A band narrower than the length difference admits no path.
		return 0, fmt.Errorf("core: DTW window %d narrower than length difference %d", window, abs(n-m))
	}
	d := len(a[0])
	sc := getScratch()
	defer putScratch(sc)
	ds := &sc.dtw
	ds.qbuf = ensureFloats(ds.qbuf, n*d)
	ds.sbuf = ensureFloats(ds.sbuf, m*d)
	for i, p := range a {
		copy(ds.qbuf[i*d:(i+1)*d], p)
	}
	for j, p := range b {
		copy(ds.sbuf[j*d:(j+1)*d], p)
	}
	ds.prev = ensureFloats(ds.prev, m+1)
	ds.cur = ensureFloats(ds.cur, m+1)
	total := dtwFlat(ds.qbuf, n, ds.sbuf, m, d, window, math.Inf(1), ds.prev, ds.cur)
	if math.IsInf(total, 1) {
		return 0, fmt.Errorf("core: DTW window %d admits no alignment for lengths %d, %d", window, n, m)
	}
	// Normalize by the longer length so values are comparable to the mean
	// distance D on equal-length inputs.
	denom := n
	if m > denom {
		denom = m
	}
	return total / float64(denom), nil
}

// RefineDTW re-ranks range-search matches by DTW distance between the
// query and each match's solution-interval points, ascending. Matches
// whose window admits no alignment keep their original relative order at
// the end. This composes the paper's pruning machinery with the elastic
// metric its related-work section discusses.
func RefineDTW(q *Sequence, matches []Match, window int) []Match {
	out, _ := RefineDTWChecked(q, matches, window)
	return out
}

// RefineDTWChecked is RefineDTW, additionally reporting how many matches
// could not be scored because the window admitted no alignment (band
// narrower than the length difference, or an empty interval) — the count
// serving layers surface so a too-narrow -dtw-window is visible instead
// of silently leaving matches unranked at the tail.
func RefineDTWChecked(q *Sequence, matches []Match, window int) ([]Match, int) {
	type scored struct {
		m  Match
		d  float64
		ok bool
	}
	ss := make([]scored, len(matches))
	unaligned := 0
	for i, m := range matches {
		ss[i] = scored{m: m}
		// Compare against the densest matching range (the longest one).
		var best PointRange
		for _, r := range m.Interval.Ranges() {
			if r.Len() > best.Len() {
				best = r
			}
		}
		if best.Len() == 0 {
			unaligned++
			continue
		}
		d, err := DTW(q.Points, m.Seq.Points[best.Start:best.End], window)
		if err != nil {
			unaligned++
			continue
		}
		ss[i].d, ss[i].ok = d, true
	}
	// Scored matches ascending by distance, ties and the unscored tail in
	// input order: a single stable sort with "unscored after scored" as
	// the secondary key replaces the former O(n²) selection pass.
	sort.SliceStable(ss, func(a, b int) bool {
		if ss[a].ok != ss[b].ok {
			return ss[a].ok
		}
		return ss[a].ok && ss[a].d < ss[b].d
	})
	out := make([]Match, len(ss))
	for i := range ss {
		out[i] = ss[i].m
	}
	return out, unaligned
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
