package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestNewSequenceValidates(t *testing.T) {
	if _, err := NewSequence("ok", []geom.Point{{0.1, 0.2}}); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	if _, err := NewSequence("empty", nil); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := NewSequence("zero-dim", []geom.Point{{}}); err == nil {
		t.Error("zero-dim point accepted")
	}
	if _, err := NewSequence("ragged", []geom.Point{{0.1}, {0.1, 0.2}}); err == nil {
		t.Error("ragged sequence accepted")
	}
}

func TestSequenceAccessors(t *testing.T) {
	s, err := NewSequence("abc", []geom.Point{{0.1, 0.9}, {0.2, 0.8}, {0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Dim() != 2 {
		t.Errorf("Len/Dim = %d/%d", s.Len(), s.Dim())
	}
	if (&Sequence{}).Dim() != 0 {
		t.Error("empty Dim should be 0")
	}
	sl := s.Slice(1, 3)
	if len(sl) != 2 || !sl[0].Equal(geom.Point{0.2, 0.8}) {
		t.Errorf("Slice = %v", sl)
	}
	b := s.Bounds()
	want := geom.MustRect(geom.Point{0.1, 0.7}, geom.Point{0.3, 0.9})
	if !b.Equal(want) {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
}

func TestSequenceCloneDeep(t *testing.T) {
	s, _ := NewSequence("x", []geom.Point{{0.5, 0.5}})
	s.ID = 42
	c := s.Clone()
	c.Points[0][0] = 0.9
	if s.Points[0][0] != 0.5 {
		t.Error("Clone shares point storage")
	}
	if c.ID != 42 || c.Label != "x" {
		t.Error("Clone lost metadata")
	}
}

func TestSequenceInUnitCube(t *testing.T) {
	in, _ := NewSequence("in", []geom.Point{{0, 0.5, 1}})
	if !in.InUnitCube() {
		t.Error("boundary sequence should be in cube")
	}
	out, _ := NewSequence("out", []geom.Point{{0.5, 0.5, 1.01}})
	if out.InUnitCube() {
		t.Error("escaping sequence reported in cube")
	}
}

func TestSegmentedRoundTripThroughDatabase(t *testing.T) {
	// The Segmented a Database stores must reference the exact sequence
	// object added (no copying) so labels and IDs stay authoritative.
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(140))
	s := randWalkSeq(rng, 60, 3)
	s.Label = "the-one"
	id, err := db.Add(s)
	if err != nil {
		t.Fatal(err)
	}
	g := db.Segmented(id)
	if g.Seq != s {
		t.Error("database copied the sequence")
	}
	if s.ID != id {
		t.Errorf("Add did not stamp ID: %d vs %d", s.ID, id)
	}
}
