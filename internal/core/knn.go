package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
)

// KNNResult is one ranked result of a k-nearest-sequences query.
type KNNResult struct {
	SeqID uint32    // database id of the neighbor
	Seq   *Sequence // the neighbor itself
	// Dist is the exact sequence distance D(Q,S).
	Dist float64
	// Offset is the best alignment of the shorter side inside the longer.
	Offset int
}

// SearchKNN returns the k stored sequences nearest to q under the exact
// distance D, in nondecreasing order. It is an extension beyond the
// paper's range queries, built from the same machinery: candidate
// sequences are ranked by the Dnorm lower bound (Lemma 3) and refined with
// the exact distance only until the next lower bound exceeds the k-th best
// exact distance — so most sequences are never scanned.
func (db *Database) SearchKNN(q *Sequence, k int) ([]KNNResult, error) {
	return db.SearchKNNBounded(q, k, math.Inf(1))
}

// SearchKNNCtx is SearchKNN honoring a context deadline or cancellation
// (see SearchCtx for the check granularity and error contract).
func (db *Database) SearchKNNCtx(ctx context.Context, q *Sequence, k int) ([]KNNResult, error) {
	return db.SearchKNNBoundedCtx(ctx, q, k, math.Inf(1))
}

// SearchKNNBounded is SearchKNN restricted to sequences with D(Q,S) ≤
// bound: refinement stops as soon as the next Dnorm lower bound exceeds
// min(bound, current k-th best), and results beyond bound are dropped
// even when fewer than k qualify. A scatter-gather caller that already
// holds k results at distance w can pass bound=w to later shards and
// prune their refinement without risking a false dismissal (any sequence
// it skips has D > w and cannot re-enter the global top k).
// bound=+Inf is exactly SearchKNN.
func (db *Database) SearchKNNBounded(q *Sequence, k int, bound float64) ([]KNNResult, error) {
	return db.SearchKNNBoundedCtx(context.Background(), q, k, bound)
}

// SearchKNNBoundedCtx is SearchKNNBounded honoring a context deadline or
// cancellation: the lower-bound pass and the refinement loop both check
// ctx periodically and abandon the query with ctx's error. A canceled
// query records nothing into the metrics registry.
//
// The whole query runs out of one pooled scratch: the query segmentation
// and flat point copy, the Dnorm arrays of the lower-bound pass, and the
// candidate min-heap (a manual heap with container/heap's exact sift
// order, minus the per-element interface boxing). Refinement uses the
// flat early-abandoning alignment kernel; abandoning cannot change any
// result (see bestAlignFlat).
func (db *Database) SearchKNNBoundedCtx(ctx context.Context, q *Sequence, k int, bound float64) ([]KNNResult, error) {
	t0 := time.Now()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Dim() != db.opts.Dim {
		return nil, fmt.Errorf("core: query dim %d, database dim %d: %w",
			q.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
	}
	if k <= 0 {
		return nil, nil
	}
	// Only unbounded queries are cached: a bound is caller state (the
	// scatter layer's running k-th best), not part of the query, so keying
	// on it would fragment the cache for results that are strict subsets.
	var ref cacheRef
	tr := obs.FromContext(ctx)
	if math.IsInf(bound, 1) {
		ref = db.knnRef(q, k)
		if rs, ok := ref.getKNN(); ok {
			if tr != nil {
				tr.RecordSpan(obs.SpanFromContext(ctx), "cache-hit", 0, obs.Str("tier", "result"))
			}
			return rs, nil
		}
	}

	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.pg == nil {
		return nil, errors.New("core: database closed")
	}

	sc := getScratch()
	defer putScratch(sc)
	sc.segmentQuery(q, db.opts.Partition)
	sc.fillQueryFlat(q)

	// Lower bound for every live sequence: min over query MBRs of the
	// sequence's MinDnorm. (The loop over all sequences is O(n·r) metric
	// work on in-memory MBRs — no point data is touched.)
	sc.heap = sc.heap[:0]
	for id, g := range db.seqs {
		if g == nil {
			continue // removed
		}
		if id%cancelCheckEvery == 0 {
			if err := searchCanceled(ctx); err != nil {
				return nil, err
			}
		}
		lb := minDnormFlat(sc.qmbrs, &sc.p3, g)
		sc.heap = pushCand(sc.heap, knnCand{id: uint32(id), bound: lb})
	}

	// Refine in bound order; stop when the next lower bound cannot beat
	// the caller's bound or the current k-th best exact distance.
	// refined counts exact-distance computations; everything left on the
	// heap at the break was dismissed by its Dnorm lower bound alone.
	candidates := len(sc.heap)
	refined := 0
	var out []KNNResult
	worst := bound
	dim := q.Dim()
	for len(sc.heap) > 0 {
		if refined%cancelCheckEvery == 0 {
			if err := searchCanceled(ctx); err != nil {
				return nil, err
			}
		}
		var c knnCand
		c, sc.heap = popCand(sc.heap)
		if c.bound > worst {
			break
		}
		g := db.seqs[c.id]
		off, dist := bestAlignFlat(sc.qflat, g.Flat, dim, worst)
		refined++
		if dist > bound {
			continue
		}
		out = insertKNN(out, KNNResult{SeqID: c.id, Seq: g.Seq, Dist: dist, Offset: off}, k)
		if len(out) == k && out[len(out)-1].Dist < worst {
			worst = out[len(out)-1].Dist
		}
	}
	took := time.Since(t0)
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "knn", took,
			obs.Int("k", k),
			obs.Int("candidates", candidates),
			obs.Int("refined", refined),
			obs.Float("pruned_frac", prunedFrac(candidates, refined)))
	}
	db.met.RecordKNN(took, refined, candidates-refined)
	ref.putKNN(out, k, took)
	return out, nil
}

// insertKNN inserts r into the sorted top-k slice, keeping at most k.
func insertKNN(rs []KNNResult, r KNNResult, k int) []KNNResult {
	pos := len(rs)
	for pos > 0 && rs[pos-1].Dist > r.Dist {
		pos--
	}
	rs = append(rs, KNNResult{})
	copy(rs[pos+1:], rs[pos:])
	rs[pos] = r
	if len(rs) > k {
		rs = rs[:k]
	}
	return rs
}

// knnCand is a sequence with its Dnorm lower bound, ordered by bound.
type knnCand struct {
	id    uint32
	bound float64
}
