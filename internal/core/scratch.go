package core

import (
	"math"
	"slices"
	"sync"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// searchScratch is the reusable workspace of one query execution: the
// columnar segmentation of the query, the phase-2 candidate buffers, and
// the phase-3 Dnorm arrays. Instances cycle through scratchPool, so a
// steady stream of queries runs without allocating — every buffer is
// grown to the high-water mark once and then reused. Nothing in a search
// result may alias scratch memory (results hold their own allocations),
// which is what makes returning the scratch to the pool safe.
type searchScratch struct {
	// Query segmentation, columnar: query MBR j's bounds occupy
	// qlo[j*d:(j+1)*d] / qhi[j*d:(j+1)*d], and qmbrs[j].Rect aliases those
	// ranges — the same dual view Segmented keeps for stored sequences.
	qlo, qhi []float64
	qmbrs    []MBRInfo
	// qflat is the columnar copy of the query points (kNN refinement).
	qflat []float64

	// Phase-2 buffers: raw index hits, then unpacked sequence ids.
	refs []rtree.Ref
	ids  []uint32

	// heap holds kNN candidates ordered by Dnorm lower bound.
	heap []knnCand

	p3 phase3Scratch

	// dtw holds the DTW workspace: DP rows, flat copies, and the
	// Sakoe–Chiba envelope arrays of the metric search path.
	dtw dtwScratch
}

// phase3Scratch holds the per-candidate Dnorm arrays. It is separate from
// searchScratch so the parallel path can hand each worker its own copy
// while they share one read-only query segmentation.
type phase3Scratch struct {
	sq     []float64 // squared Dmbr per target MBR (MinDistSqBatch output)
	dists  []float64 // sqrt(sq): the Dmbr values dnormCalc consumes
	prefix []int     // count prefix sums (len r+1)
	wpre   []float64 // weighted-distance prefix sums (len r+1)
	wins   []dnWindow
	calc   dnormCalc
}

var scratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

func getScratch() *searchScratch   { return scratchPool.Get().(*searchScratch) }
func putScratch(sc *searchScratch) { scratchPool.Put(sc) }

// ensureFloats returns s resized to length n, reallocating only when the
// capacity is insufficient.
func ensureFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// ensureInts is ensureFloats for int slices.
func ensureInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// segmentQuery partitions q into the scratch's columnar arrays — the same
// greedy MCOST rule as Partition, with identical floating-point operation
// order, so it produces exactly the MBRs NewSegmented would. It writes
// bounds into qlo/qhi (pre-sized to the worst case of one MBR per point,
// so the aliased qmbrs rects never dangle) and rebuilds qmbrs. The query
// must already be validated.
func (sc *searchScratch) segmentQuery(q *Sequence, cfg PartitionConfig) {
	d := q.Dim()
	n := q.Len()
	sc.qlo = ensureFloats(sc.qlo, n*d)
	sc.qhi = ensureFloats(sc.qhi, n*d)
	if cap(sc.qmbrs) < n {
		sc.qmbrs = make([]MBRInfo, 0, n)
	}
	sc.qmbrs = sc.qmbrs[:0]

	cur := MBRInfo{Start: 0, End: 1}
	slot := func(j int) geom.Rect {
		return geom.Rect{
			L: sc.qlo[j*d : (j+1)*d : (j+1)*d],
			H: sc.qhi[j*d : (j+1)*d : (j+1)*d],
		}
	}
	cur.Rect = slot(0)
	copy(cur.Rect.L, q.Points[0])
	copy(cur.Rect.H, q.Points[0])
	curCost := cfg.mcost(cur.Rect, 1)
	for i := 1; i < n; i++ {
		p := q.Points[i]
		grownCost := cfg.mcostGrown(cur.Rect, p, cur.Count()+1)
		if grownCost > curCost || cur.Count() >= cfg.MaxPoints {
			sc.qmbrs = append(sc.qmbrs, cur)
			cur = MBRInfo{Rect: slot(len(sc.qmbrs)), Start: i, End: i + 1}
			copy(cur.Rect.L, p)
			copy(cur.Rect.H, p)
			curCost = cfg.mcost(cur.Rect, 1)
			continue
		}
		cur.Rect.ExtendPoint(p)
		cur.End = i + 1
		curCost = grownCost
	}
	sc.qmbrs = append(sc.qmbrs, cur)
}

// fillQueryFlat copies the query points into the scratch's columnar array
// (kNN refinement input).
func (sc *searchScratch) fillQueryFlat(q *Sequence) {
	d := q.Dim()
	sc.qflat = ensureFloats(sc.qflat, q.Len()*d)
	for i, p := range q.Points {
		copy(sc.qflat[i*d:(i+1)*d], p)
	}
}

// appendSeqIDs unpacks the sequence-id half of each index hit into ids.
func appendSeqIDs(ids []uint32, refs []rtree.Ref) []uint32 {
	for _, r := range refs {
		id, _ := r.Unpack()
		ids = append(ids, id)
	}
	return ids
}

// sortDedupUint32 sorts ids ascending and removes duplicates in place —
// the allocation-free replacement for the candidate set map: phase 2
// appends every hit, then one sort+compact yields the unique candidate
// ids in the order the serial search has always processed them.
func sortDedupUint32(ids []uint32) []uint32 {
	slices.Sort(ids)
	return slices.Compact(ids)
}

// ensure sizes the Dnorm arrays for a candidate with r target MBRs and
// resets the prefix bases.
func (p3 *phase3Scratch) ensure(r int) {
	p3.sq = ensureFloats(p3.sq, r)
	p3.dists = ensureFloats(p3.dists, r)
	p3.prefix = ensureInts(p3.prefix, r+1)
	p3.wpre = ensureFloats(p3.wpre, r+1)
	p3.prefix[0] = 0
	p3.wpre[0] = 0
}

// phase3Flat runs the Dnorm pruning and solution-interval assembly for one
// candidate sequence — the allocation-free form of phase3One. The query
// side is any []MBRInfo whose rects can be read as flat bounds (both the
// pooled segmentQuery output and a Segmented's MBRs qualify); the data
// side uses the candidate's columnar Lo/Hi through MinDistSqBatch, so the
// whole Dmbr row of the Dnorm table is computed over sequential memory in
// squared space, with one sqrt per target when converting to the weighted
// means Definition 5 needs. Emission order, arithmetic, and results are
// identical to phase3One (see the equivalence tests).
//
// It is implemented on phase3FlatQ with the quantized prefilter off.
func phase3Flat(qmbrs []MBRInfo, p3 *phase3Scratch, g *Segmented, qLen int, eps float64) (m Match, hit bool, evals int) {
	m, hit, evals, _ = phase3FlatQ(qmbrs, p3, g, qLen, eps, false)
	return m, hit, evals
}

// phase3FlatQ is phase3Flat with an optional quantized-MBR prefilter.
// With quant set, each (query MBR, candidate) pair is screened against
// the candidate's float32 outward-rounded bounds first: every Dnorm
// window distance is a convex combination of per-target Dmbr values, so
// it is at least the minimum Dmbr, and the quantized minimum lower-bounds
// that (geom.MinDistSqWithinQ). When no quantized target is within eps,
// no window of this pair can qualify and the pair's exact Dmbr batch,
// sqrt loop, and window sweep are all skipped. A skipped pair cannot
// change the emitted Match either: its window minimum exceeds eps, while
// an emitted match's MinDnorm is at most eps, so the overall minimum is
// never attained in a skipped pair. Results are therefore bit-identical
// with quant on or off; only evals/qpruned accounting differs.
func phase3FlatQ(qmbrs []MBRInfo, p3 *phase3Scratch, g *Segmented, qLen int, eps float64, quant bool) (m Match, hit bool, evals, qpruned int) {
	m = Match{Seq: g.Seq, MinDnorm: math.Inf(1)}
	r := len(g.MBRs)
	epsSq := eps * eps
	for qi := range qmbrs {
		qm := &qmbrs[qi]
		if quant && !geom.MinDistSqWithinQ(qm.Rect.L, qm.Rect.H, g.QLo, g.QHi, epsSq) {
			qpruned++
			continue
		}
		p3.ensure(r)
		geom.MinDistSqBatch(qm.Rect.L, qm.Rect.H, g.Lo, g.Hi, p3.sq)
		c := &p3.calc
		*c = dnormCalc{
			mbrs:   g.MBRs,
			dists:  p3.dists,
			prefix: p3.prefix,
			wpre:   p3.wpre,
			qCount: qm.Count(),
		}
		for t := 0; t < r; t++ {
			c.dists[t] = math.Sqrt(p3.sq[t])
			c.prefix[t+1] = c.prefix[t] + g.MBRs[t].Count()
			c.wpre[t+1] = c.wpre[t] + c.dists[t]*float64(g.MBRs[t].Count())
		}
		evals += r
		var minDist float64
		minDist, p3.wins = c.sweepAppend(eps, p3.wins[:0])
		for _, w := range p3.wins {
			hit = true
			start := w.pstart - qm.Start
			end := w.pend + (qLen - qm.End)
			if start < 0 {
				start = 0
			}
			if end > g.Seq.Len() {
				end = g.Seq.Len()
			}
			m.Interval.Add(PointRange{Start: start, End: end})
		}
		if minDist < m.MinDnorm {
			m.MinDnorm = minDist
		}
	}
	return m, hit, evals, qpruned
}

// minDnormFlat is the kNN lower-bound pass for one sequence: the minimum
// sweep value over all query MBRs, computed through the same flat
// machinery as phase3Flat with window collection suppressed.
func minDnormFlat(qmbrs []MBRInfo, p3 *phase3Scratch, g *Segmented) float64 {
	bound := math.Inf(1)
	r := len(g.MBRs)
	for qi := range qmbrs {
		qm := &qmbrs[qi]
		p3.ensure(r)
		geom.MinDistSqBatch(qm.Rect.L, qm.Rect.H, g.Lo, g.Hi, p3.sq)
		c := &p3.calc
		*c = dnormCalc{
			mbrs:   g.MBRs,
			dists:  p3.dists,
			prefix: p3.prefix,
			wpre:   p3.wpre,
			qCount: qm.Count(),
		}
		for t := 0; t < r; t++ {
			c.dists[t] = math.Sqrt(p3.sq[t])
			c.prefix[t+1] = c.prefix[t] + g.MBRs[t].Count()
			c.wpre[t+1] = c.wpre[t] + c.dists[t]*float64(g.MBRs[t].Count())
		}
		if d, _ := c.sweepAppend(math.Inf(-1), nil); d < bound {
			bound = d
		}
	}
	return bound
}

// pushCand pushes c onto the binary min-heap in h (ordered by bound) and
// returns the grown slice. The sift-up replicates container/heap exactly,
// so replacing the interface-based heap (which boxed every element)
// changes neither the heap shape nor the pop order.
func pushCand(h []knnCand, c knnCand) []knnCand {
	h = append(h, c)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(h[i].bound < h[parent].bound) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// popCand removes and returns the minimum-bound candidate, mirroring
// container/heap's swap-root-with-last + sift-down.
func popCand(h []knnCand) (knnCand, []knnCand) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if rt := l + 1; rt < n && h[rt].bound < h[l].bound {
			j = rt
		}
		if !(h[j].bound < h[i].bound) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return h[n], h[:n]
}
