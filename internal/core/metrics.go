package core

import (
	"strconv"
	"time"

	"repro/internal/obs"
)

// Metrics is the pre-resolved set of registry instruments the database
// hot paths record into. Resolving each counter and histogram once at
// wiring time keeps the per-query cost to a handful of atomic adds — no
// map lookups or locks on the search path (overhead measured by
// BenchmarkSearchInstrumented at the repo root).
//
// The instruments mirror the paper's evaluation quantities: the pruning
// counters are the numerators and denominators of the filter-selectivity
// ratios of Figures 6–7, and the phase histograms are the latency
// decomposition of the three-phase SIMILARITY_SEARCH algorithm.
// DESIGN.md's "Observability" section maps every metric to its paper
// concept.
type Metrics struct {
	searches   *obs.Counter
	searchSecs *obs.Histogram
	phaseSecs  [3]*obs.Histogram

	seqsSeen    *obs.Counter
	candidates  *obs.Counter
	matches     *obs.Counter
	prunedDmbr  *obs.Counter
	prunedDnorm *obs.Counter
	indexHits   *obs.Counter
	dnormEvals  *obs.Counter

	knnQueries *obs.Counter
	knnSecs    *obs.Histogram
	knnRefined *obs.Counter
	knnPruned  *obs.Counter

	adds     *obs.Counter
	addSecs  *obs.Histogram
	liveSeqs *obs.Gauge
	liveMBRs *obs.Gauge

	dtwSearches    *obs.Counter
	dtwKNN         *obs.Counter
	dtwCandidates  *obs.Counter
	dtwEnvPruned   *obs.Counter
	dtwKeoghPruned *obs.Counter
	dtwEvals       *obs.Counter
}

// phaseNames label the three phases of the search algorithm in
// mdseq_search_phase_seconds.
var phaseNames = [3]string{"partition", "filter", "refine"}

// NewMetrics resolves the database instruments in reg. A nil registry
// yields a nil *Metrics, and every Metrics method no-ops on a nil
// receiver, so callers wire metrics with a single assignment and the
// uninstrumented path stays a pointer test.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		searches: reg.Counter("mdseq_search_total",
			"Range searches served (three-phase SIMILARITY_SEARCH)."),
		searchSecs: reg.Histogram("mdseq_search_seconds",
			"End-to-end range-search latency in seconds.", nil),
		seqsSeen: reg.Counter("mdseq_search_sequences_seen_total",
			"Corpus sequences considered, summed over searches — the denominator of the pruning ratios."),
		candidates: reg.Counter("mdseq_search_candidates_dmbr_total",
			"Sequences surviving the Dmbr index filter (|ASmbr|, Lemma 2)."),
		matches: reg.Counter("mdseq_search_matches_total",
			"Sequences surviving the Dnorm filter (|ASnorm|, Lemma 3)."),
		prunedDmbr: reg.Counter("mdseq_search_pruned_dmbr_total",
			"Sequences eliminated by the Dmbr index filter without touching their MBR lists."),
		prunedDnorm: reg.Counter("mdseq_search_candidates_pruned_total",
			"Dmbr candidates eliminated by the Dnorm filter (Lemma 3) before exact refinement."),
		indexHits: reg.Counter("mdseq_search_index_entries_total",
			"R*-tree leaf entries (partition MBRs) visited during phase 2."),
		dnormEvals: reg.Counter("mdseq_search_dnorm_evals_total",
			"Dnorm window evaluations performed during phase 3."),
		knnQueries: reg.Counter("mdseq_knn_total",
			"k-nearest-sequence queries served."),
		knnSecs: reg.Histogram("mdseq_knn_seconds",
			"End-to-end kNN latency in seconds.", nil),
		knnRefined: reg.Counter("mdseq_knn_refined_total",
			"Sequences refined with the exact distance D during kNN."),
		knnPruned: reg.Counter("mdseq_knn_pruned_total",
			"Sequences dismissed during kNN by the Dnorm lower bound alone."),
		adds: reg.Counter("mdseq_sequences_added_total",
			"Sequences ingested (Add, AddAll, streaming loads)."),
		addSecs: reg.Histogram("mdseq_add_seconds",
			"Single-sequence ingest latency in seconds (partition + index insert).", nil),
		liveSeqs: reg.Gauge("mdseq_sequences",
			"Live (non-removed) sequences currently stored."),
		liveMBRs: reg.Gauge("mdseq_index_mbrs",
			"Partition MBRs currently indexed in the R*-tree."),
		dtwSearches: reg.Counter("mdseq_dtw_search_total",
			"Range searches served under the DTW metric (envelope-pruned index path)."),
		dtwKNN: reg.Counter("mdseq_dtw_knn_total",
			"k-nearest-sequence queries served under the DTW metric."),
		dtwCandidates: reg.Counter("mdseq_dtw_candidates_total",
			"Candidate sequences entering DTW refinement ordering, summed over DTW queries."),
		dtwEnvPruned: reg.Counter("mdseq_dtw_env_pruned_total",
			"Candidates dismissed by the envelope-vs-MBR index lower bound without touching point data."),
		dtwKeoghPruned: reg.Counter("mdseq_dtw_keogh_pruned_total",
			"Candidates dismissed by the multidimensional LB_Keogh bound before the exact dynamic program."),
		dtwEvals: reg.Counter("mdseq_dtw_evals_total",
			"Exact DTW dynamic-program evaluations (refinement survivors)."),
	}
	for i, name := range phaseNames {
		m.phaseSecs[i] = reg.Histogram("mdseq_search_phase_seconds",
			"Per-phase search latency in seconds (partition | filter | refine).",
			nil, obs.Label{Key: "phase", Value: name})
	}
	return m
}

// RecordSearch folds one completed search's statistics into the registry.
// For a merged scatter-gather result the counters are cross-shard sums
// and the phase durations the slowest shard's (see shard.mergeStats), so
// the pruning ratios stay exact and the histograms reflect wall-clock.
func (m *Metrics) RecordSearch(st SearchStats) {
	if m == nil {
		return
	}
	m.searches.Inc()
	m.searchSecs.ObserveDuration(st.Total())
	m.phaseSecs[0].ObserveDuration(st.Phase1)
	m.phaseSecs[1].ObserveDuration(st.Phase2)
	m.phaseSecs[2].ObserveDuration(st.Phase3)
	m.seqsSeen.Add(uint64(st.TotalSequences))
	m.candidates.Add(uint64(st.CandidatesDmbr))
	m.matches.Add(uint64(st.MatchesDnorm))
	if d := st.TotalSequences - st.CandidatesDmbr; d > 0 {
		m.prunedDmbr.Add(uint64(d))
	}
	if d := st.CandidatesDmbr - st.MatchesDnorm; d > 0 {
		m.prunedDnorm.Add(uint64(d))
	}
	m.indexHits.Add(uint64(st.IndexEntriesHit))
	m.dnormEvals.Add(uint64(st.DnormEvals))
}

// RecordKNN folds one completed kNN query into the registry: its
// end-to-end latency plus how many candidates needed the exact distance
// (refined) versus how many the Dnorm lower bound dismissed outright
// (pruned) — the kNN analogue of the paper's filter selectivity.
func (m *Metrics) RecordKNN(d time.Duration, refined, pruned int) {
	if m == nil {
		return
	}
	m.knnQueries.Inc()
	m.knnSecs.ObserveDuration(d)
	m.knnRefined.Add(uint64(refined))
	m.knnPruned.Add(uint64(pruned))
}

// RecordDTW folds one completed DTW-metric query's pruning ladder into
// the registry: how many Dmbr candidates entered refinement ordering,
// how many each lower-bound tier dismissed, and how many reached the
// exact dynamic program — the DTW analogue of the filter-selectivity
// ratios. knn selects which query counter increments.
func (m *Metrics) RecordDTW(knn bool, candidates, envPruned, keoghPruned, evals int) {
	if m == nil {
		return
	}
	if knn {
		m.dtwKNN.Inc()
	} else {
		m.dtwSearches.Inc()
	}
	m.dtwCandidates.Add(uint64(candidates))
	m.dtwEnvPruned.Add(uint64(envPruned))
	m.dtwKeoghPruned.Add(uint64(keoghPruned))
	m.dtwEvals.Add(uint64(evals))
}

// RecordAdd folds one single-sequence ingest into the registry.
func (m *Metrics) RecordAdd(d time.Duration) {
	if m == nil {
		return
	}
	m.adds.Inc()
	m.addSecs.ObserveDuration(d)
}

// RecordBulkAdd counts a batch ingest without per-sequence latency.
func (m *Metrics) RecordBulkAdd(n int) {
	if m == nil {
		return
	}
	m.adds.Add(uint64(n))
}

// SetShape publishes the current corpus size and index size gauges.
func (m *Metrics) SetShape(sequences, mbrs int) {
	if m == nil {
		return
	}
	m.liveSeqs.Set(float64(sequences))
	m.liveMBRs.Set(float64(mbrs))
}

// ShardLabel builds the {shard="i"} label used by per-shard series.
func ShardLabel(i int) obs.Label {
	return obs.Label{Key: "shard", Value: strconv.Itoa(i)}
}

// SetMetrics wires the database to record into reg (nil detaches). Safe
// to call at any time, including on a database already serving traffic;
// past activity is not backfilled. The shape gauges are seeded
// immediately.
func (db *Database) SetMetrics(reg *obs.Registry) {
	m := NewMetrics(reg)
	db.mu.Lock()
	defer db.mu.Unlock()
	db.met = m
	if db.pg != nil {
		m.SetShape(db.live, db.tree.Len())
	}
}
