package core

import (
	"math/rand"
	"testing"
)

func TestAddAllEmptyDatabaseBulkPath(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	seqs := make([]*Sequence, 60)
	for i := range seqs {
		seqs[i] = randWalkSeq(rng, 40+rng.Intn(100), 3)
	}

	bulkDB := newTestDB(t, 3)
	ids, err := bulkDB.AddAll(seqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 60 || bulkDB.Len() != 60 {
		t.Fatalf("ids=%d Len=%d", len(ids), bulkDB.Len())
	}
	for i, id := range ids {
		if id != uint32(i) {
			t.Fatalf("ids not dense: %v", ids[:i+1])
		}
		if bulkDB.Segmented(id) == nil {
			t.Fatalf("sequence %d not retrievable", id)
		}
	}

	// Identical search results to the incremental path.
	incDB := newTestDB(t, 3)
	for _, s := range seqs {
		cp := s.Clone()
		if _, err := incDB.Add(cp); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 10; trial++ {
		q := randWalkSeq(rng, 20+rng.Intn(40), 3)
		eps := 0.1 + 0.1*float64(trial%4)
		a, _, err := bulkDB.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := incDB.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d: bulk %d vs incremental %d matches", trial, len(a), len(b))
		}
		for i := range a {
			if a[i].SeqID != b[i].SeqID {
				t.Fatalf("trial %d: id mismatch at rank %d", trial, i)
			}
		}
	}
}

func TestAddAllNonEmptyFallsBack(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(81))
	first := randWalkSeq(rng, 50, 3)
	if _, err := db.Add(first); err != nil {
		t.Fatal(err)
	}
	more := []*Sequence{randWalkSeq(rng, 60, 3), randWalkSeq(rng, 70, 3)}
	ids, err := db.AddAll(more)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("ids = %v", ids)
	}
	if db.Len() != 3 {
		t.Errorf("Len = %d", db.Len())
	}
	// All three findable.
	for i, s := range append([]*Sequence{first}, more...) {
		q := &Sequence{Points: s.Points[:20]}
		matches, _, err := db.Search(q, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range matches {
			if m.SeqID == uint32(i) {
				found = true
			}
		}
		if !found {
			t.Errorf("sequence %d not found after fallback AddAll", i)
		}
	}
}

func TestAddAllValidation(t *testing.T) {
	db := newTestDB(t, 3)
	if ids, err := db.AddAll(nil); err != nil || ids != nil {
		t.Errorf("empty AddAll: %v %v", ids, err)
	}
	if _, err := db.AddAll([]*Sequence{{}}); err == nil {
		t.Error("invalid sequence accepted")
	}
	if _, err := db.AddAll([]*Sequence{seqFromCoords(1, 2)}); err == nil {
		t.Error("wrong-dim sequence accepted")
	}
	if db.Len() != 0 {
		t.Error("failed AddAll mutated the database")
	}
}

func TestAddAllNoFalseDismissals(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(82))
	seqs := make([]*Sequence, 40)
	for i := range seqs {
		seqs[i] = randWalkSeq(rng, 60+rng.Intn(80), 3)
	}
	if _, err := db.AddAll(seqs); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		q := randWalkSeq(rng, 25+rng.Intn(40), 3)
		eps := 0.1 + 0.1*float64(trial%4)
		exact, err := db.SequentialSearch(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		matches, _, err := db.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[uint32]bool)
		for _, m := range matches {
			got[m.SeqID] = true
		}
		for _, r := range exact {
			if !got[r.SeqID] {
				t.Fatalf("bulk-loaded index dismissed sequence %d (D=%g, eps=%g)", r.SeqID, r.Dist, eps)
			}
		}
	}
}
