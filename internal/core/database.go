package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/rtree"
)

// Options configures a Database.
type Options struct {
	// Dim is the dimensionality of all stored sequences. Required.
	Dim int
	// Partition tunes the MCOST segmentation (zero value → paper defaults).
	Partition PartitionConfig
	// PageSize and PoolPages configure the index's page store
	// (0 → pager defaults).
	PageSize, PoolPages int
	// Path backs the index with a file; empty runs in memory.
	Path string
	// WAL enables write-ahead logging on the index file (requires Path):
	// every Add/Remove becomes crash-atomic and reopening after a crash
	// replays any committed-but-unapplied index updates.
	WAL bool
	// MaxEntries overrides the R*-tree fanout (0 → derive from page size).
	MaxEntries int
	// Eviction selects the buffer-pool replacement policy.
	Eviction pager.Eviction
	// QuantizedMBR turns on the quantized-MBR prefilter in phase 3 of
	// range searches: each (query MBR, candidate) pair is first screened
	// against the candidate's float32 outward-rounded bounds (half the
	// memory traffic of the exact arrays), and the exact float64 Dnorm
	// machinery runs only for pairs the screen cannot dismiss. Quantized
	// distances are conservative lower bounds, so results are
	// bit-identical to the exact pipeline (no false dismissals); only
	// SearchStats accounting (DnormEvals, QuantPruned) differs.
	QuantizedMBR bool
}

// Database stores segmented multidimensional sequences and answers
// similarity queries with the paper's three-phase algorithm over an
// R*-tree of partition MBRs.
type Database struct {
	mu   sync.RWMutex
	opts Options
	pg   *pager.Pager
	tree *rtree.Tree
	seqs []*Segmented // seqs[id] — ids are dense, assigned by Add; nil = removed
	live int          // number of non-nil entries in seqs
	met  *Metrics     // nil until SetMetrics; all methods no-op on nil

	// epoch counts completed writes (the corpus-version observable);
	// qcache (nil until SetCache) holds query results tagged with their
	// compute cost and geometric region. Every write notifies it with
	// the written sequence's MBR so only entries the write could have
	// affected are invalidated (see internal/cache).
	epoch  atomic.Uint64
	qcache atomic.Pointer[cache.Cache]
}

// ErrUnknownSequence is returned by Remove for absent or already-removed
// ids.
var ErrUnknownSequence = errors.New("core: unknown sequence id")

// NewDatabase creates an empty database.
func NewDatabase(opts Options) (*Database, error) {
	if opts.Dim < 1 {
		return nil, fmt.Errorf("core: invalid dimension %d", opts.Dim)
	}
	if opts.Partition == (PartitionConfig{}) {
		opts.Partition = DefaultPartitionConfig()
	}
	if err := opts.Partition.validate(); err != nil {
		return nil, err
	}
	pg, err := pager.Open(pager.Options{
		PageSize:  opts.PageSize,
		PoolPages: opts.PoolPages,
		Path:      opts.Path,
		WAL:       opts.WAL,
		Eviction:  opts.Eviction,
	})
	if err != nil {
		return nil, err
	}
	tree, err := rtree.New(rtree.Options{Dim: opts.Dim, Pager: pg, MaxEntries: opts.MaxEntries})
	if err != nil {
		pg.Close()
		return nil, err
	}
	return &Database{opts: opts, pg: pg, tree: tree}, nil
}

// OpenDatabase reattaches to an existing index file created by a database
// with the same options, restoring the given sequences (in their original
// Add order). Partitioning is deterministic, so each sequence's MBRs are
// recomputed rather than stored; the index is validated against them
// (total entry count must match) instead of being rebuilt. Options.Path is
// required and must point at the previously flushed index.
func OpenDatabase(opts Options, seqs []*Sequence) (*Database, error) {
	db, err := openIndexed(opts)
	if err != nil {
		return nil, err
	}
	opts = db.opts // defaults applied
	total := 0
	for i, s := range seqs {
		if err := s.Validate(); err != nil {
			db.pg.Close()
			return nil, fmt.Errorf("core: sequence %d: %w", i, err)
		}
		if s.Dim() != opts.Dim {
			db.pg.Close()
			return nil, fmt.Errorf("core: sequence %d dim %d, want %d", i, s.Dim(), opts.Dim)
		}
		g, err := NewSegmented(s, opts.Partition)
		if err != nil {
			db.pg.Close()
			return nil, err
		}
		s.ID = uint32(i)
		db.seqs = append(db.seqs, g)
		db.live++
		total += len(g.MBRs)
	}
	if total != db.tree.Len() {
		db.pg.Close()
		return nil, fmt.Errorf("core: index holds %d entries but sequences partition into %d (stale index or different partition config?)",
			db.tree.Len(), total)
	}
	return db, nil
}

// OpenDatabaseSegmented is OpenDatabase for an already-partitioned
// corpus — the v2 store's restart path, where the segment file supplies
// Segmenteds by aliasing and the index pages already exist on disk, so
// neither partitioning nor index rebuild runs. The same staleness check
// applies: the index must hold exactly the corpus's MBR count.
func OpenDatabaseSegmented(opts Options, segs []*Segmented) (*Database, error) {
	db, err := openIndexed(opts)
	if err != nil {
		return nil, err
	}
	total := 0
	for i, g := range segs {
		if g == nil || g.Seq == nil {
			db.pg.Close()
			return nil, fmt.Errorf("core: nil segment %d", i)
		}
		if g.Seq.Dim() != db.opts.Dim {
			db.pg.Close()
			return nil, fmt.Errorf("core: sequence %d dim %d, want %d", i, g.Seq.Dim(), db.opts.Dim)
		}
		g.Seq.ID = uint32(i)
		db.seqs = append(db.seqs, g)
		db.live++
		total += len(g.MBRs)
	}
	if total != db.tree.Len() {
		db.pg.Close()
		return nil, fmt.Errorf("core: index holds %d entries but corpus has %d MBRs (stale index?)",
			db.tree.Len(), total)
	}
	return db, nil
}

// openIndexed opens the pager and existing R*-tree for a reattach,
// leaving the sequence directory empty for the caller to fill.
func openIndexed(opts Options) (*Database, error) {
	if opts.Dim < 1 {
		return nil, fmt.Errorf("core: invalid dimension %d", opts.Dim)
	}
	if opts.Path == "" {
		return nil, errors.New("core: OpenDatabase requires Options.Path")
	}
	if opts.Partition == (PartitionConfig{}) {
		opts.Partition = DefaultPartitionConfig()
	}
	if err := opts.Partition.validate(); err != nil {
		return nil, err
	}
	pg, err := pager.Open(pager.Options{
		PageSize:  opts.PageSize,
		PoolPages: opts.PoolPages,
		Path:      opts.Path,
		WAL:       opts.WAL,
		Eviction:  opts.Eviction,
	})
	if err != nil {
		return nil, err
	}
	tree, err := rtree.Open(rtree.Options{Pager: pg, MaxEntries: opts.MaxEntries})
	if err != nil {
		pg.Close()
		return nil, err
	}
	if tree.Dim() != opts.Dim {
		pg.Close()
		return nil, fmt.Errorf("core: index dim %d, options dim %d", tree.Dim(), opts.Dim)
	}
	return &Database{opts: opts, pg: pg, tree: tree}, nil
}

// Flush persists all dirty index pages and metadata to the backing file
// (a no-op for in-memory databases). After a Flush, OpenDatabase can
// reattach to the file.
func (db *Database) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pg == nil {
		return errors.New("core: database closed")
	}
	return db.tree.Flush()
}

// Close releases the index storage.
func (db *Database) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pg == nil {
		return nil
	}
	err := db.tree.Flush()
	if cerr := db.pg.Close(); err == nil {
		err = cerr
	}
	db.pg = nil
	return err
}

// Add partitions the sequence, indexes its MBRs, and returns the assigned
// sequence id. Partitioning runs before the write lock is taken, so
// concurrent readers are only excluded for the index insertions
// themselves. The database keeps a reference to s; callers must not
// mutate it afterwards.
func (db *Database) Add(s *Sequence) (uint32, error) {
	t0 := time.Now()
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if s.Dim() != db.opts.Dim {
		return 0, fmt.Errorf("core: sequence dim %d, database dim %d: %w",
			s.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
	}
	g, err := NewSegmented(s, db.opts.Partition)
	if err != nil {
		return 0, err
	}
	id, err := db.AddSegmented(g)
	if err != nil {
		return 0, err
	}
	db.met.RecordAdd(time.Since(t0))
	return id, nil
}

// AddSegmented indexes a pre-partitioned sequence and returns its
// assigned id. It is the mutation half of Add, split out so callers that
// already hold a Segmented — the transaction layer folding its delta, or
// AddAll partitioning a batch outside the lock — pay only for the index
// insertions under the write lock. The partitioning must have been
// produced with the database's PartitionConfig. On an index failure the
// already-inserted entries are rolled back and the database is unchanged.
func (db *Database) AddSegmented(g *Segmented) (uint32, error) {
	if g.Seq.Dim() != db.opts.Dim {
		return 0, fmt.Errorf("core: sequence dim %d, database dim %d: %w",
			g.Seq.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pg == nil {
		return 0, errors.New("core: database closed")
	}
	id, err := db.addSegmentedLocked(g)
	if err != nil {
		return 0, err
	}
	db.notifyWrite(g.Bounds())
	db.met.SetShape(db.live, db.tree.Len())
	return id, nil
}

// addSegmentedLocked inserts g's entries and appends it to the directory,
// rolling back the inserted entries on error. Caller holds db.mu.
func (db *Database) addSegmentedLocked(g *Segmented) (uint32, error) {
	id := uint32(len(db.seqs))
	for j, m := range g.MBRs {
		if err := db.tree.Insert(m.Rect, rtree.PackRef(id, uint32(j))); err != nil {
			for k := 0; k < j; k++ {
				db.tree.Delete(g.MBRs[k].Rect, rtree.PackRef(id, uint32(k)))
			}
			return 0, err
		}
	}
	g.Seq.ID = id
	db.seqs = append(db.seqs, g)
	db.live++
	return id, nil
}

// AddTombstone reserves and returns the next sequence id as a dead slot:
// no sequence, no index entries, lookups yield nil — exactly the state
// Remove leaves behind. The transaction layer (internal/txn) uses it when
// rebuilding a database from a checkpoint to reproduce the id layout of
// sequences that were added and later removed, so ids stay stable across
// restarts.
func (db *Database) AddTombstone() (uint32, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pg == nil {
		return 0, errors.New("core: database closed")
	}
	id := uint32(len(db.seqs))
	db.seqs = append(db.seqs, nil)
	return id, nil
}

// DirLen returns the length of the sequence directory — the id the next
// Add would assign. Unlike Len it counts removed slots, since removal
// never frees an id.
func (db *Database) DirLen() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.seqs)
}

// Remove deletes a sequence and all its index entries. The id is not
// reused; looking it up afterwards yields nil.
func (db *Database) Remove(id uint32) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.pg == nil {
		return errors.New("core: database closed")
	}
	if int(id) >= len(db.seqs) || db.seqs[id] == nil {
		return fmt.Errorf("%w: %d", ErrUnknownSequence, id)
	}
	g := db.seqs[id]
	for j, m := range g.MBRs {
		if err := db.tree.Delete(m.Rect, rtree.PackRef(id, uint32(j))); err != nil {
			return fmt.Errorf("core: removing sequence %d, MBR %d: %w", id, j, err)
		}
	}
	db.seqs[id] = nil
	db.live--
	db.notifyWrite(g.Bounds())
	db.met.SetShape(db.live, db.tree.Len())
	return nil
}

// Len returns the number of stored (non-removed) sequences.
func (db *Database) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.live
}

// NumMBRs returns the total number of indexed partition MBRs.
func (db *Database) NumMBRs() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tree.Len()
}

// Segmented returns the stored (sequence, partitioning) pair for id, or
// nil when the id is unknown.
func (db *Database) Segmented(id uint32) *Segmented {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if int(id) >= len(db.seqs) {
		return nil
	}
	return db.seqs[id]
}

// Sequences returns the live (non-removed) sequences in id order.
func (db *Database) Sequences() []*Sequence {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Sequence, 0, db.live)
	for _, g := range db.seqs {
		if g != nil {
			out = append(out, g.Seq)
		}
	}
	return out
}

// LiveSegments returns the live (non-removed) segments in id order — the
// already-partitioned columnar form the v2 segment store serializes
// directly, skipping the re-partitioning a Sequences round trip would
// force on reload. Callers must treat the segments as read-only: they
// are the database's own storage, not copies.
func (db *Database) LiveSegments() []*Segmented {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Segmented, 0, db.live)
	for _, g := range db.seqs {
		if g != nil {
			out = append(out, g)
		}
	}
	return out
}

// IndexHeight returns the height of the R*-tree over all partition MBRs.
func (db *Database) IndexHeight() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tree.Height()
}

// IndexFanout returns the R*-tree node capacity in force.
func (db *Database) IndexFanout() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tree.MaxEntries()
}

// PartitionConfig returns the partitioning settings in force.
func (db *Database) PartitionConfig() PartitionConfig { return db.opts.Partition }

// Dim returns the dimensionality every stored sequence must have.
func (db *Database) Dim() int { return db.opts.Dim }

// Shards returns the number of independent index partitions — always 1
// for a single-node database. It exists so *Database satisfies the same
// serving interface as the sharded implementation (internal/shard).
func (db *Database) Shards() int { return 1 }

// PagerStats exposes the index page-access counters.
func (db *Database) PagerStats() pager.Stats { return db.pg.Stats() }

// ResetPagerStats zeroes the index page-access counters.
func (db *Database) ResetPagerStats() { db.pg.ResetStats() }

// Match is one sequence surviving phase 3, with its approximated solution
// interval.
type Match struct {
	SeqID uint32    // database id of the matching sequence
	Seq   *Sequence // the matching sequence itself
	// MinDnorm is the smallest Dnorm over all (query MBR, data MBR)
	// pairs — a lower bound on D(Q,S), usable for ranking.
	MinDnorm float64
	// Interval approximates the solution interval: the union of the point
	// ranges involved in every qualifying Dnorm computation.
	Interval IntervalSet
}

// SearchStats reports what each phase of one Search did.
type SearchStats struct {
	QueryMBRs       int           // phase 1: partitions of the query
	TotalSequences  int           // database size at query time
	CandidatesDmbr  int           // |ASmbr| after phase 2
	MatchesDnorm    int           // |ASnorm| after phase 3
	IndexEntriesHit int           // leaf entries the index search visited
	DnormEvals      int           // Dnorm computations in phase 3
	Phase1          time.Duration // query partitioning
	Phase2          time.Duration // index pruning by Dmbr
	Phase3          time.Duration // Dnorm pruning + interval assembly
	// CPUTime is the summed duration of every phase execution behind this
	// stats value. For a serial single-node search it equals Total(); for
	// a parallel search it is Phase1+Phase2 plus the summed per-worker
	// phase-3 compute (so it exceeds Total() whenever the workers
	// actually overlapped); for a merged scatter-gather result it sums
	// across shards while Phase1–3 keep the slowest shard's value (phases
	// overlap in wall-clock; see shard.mergeStats). CPUTime/Total() reads
	// as the query's effective parallelism.
	CPUTime time.Duration
	// CacheHit is true when this result was served from the query cache
	// (SetCache) instead of being computed. The counters and phase
	// timings are then those of the run that originally produced the
	// entry — "the cost this answer represents", not the cost of this
	// call.
	CacheHit bool
	// Partial is true when this result was assembled from fewer shards
	// than exist — some shard missed its deadline or failed and the
	// scatter was configured to degrade instead of erroring. A partial
	// answer set is a subset of the complete one (the answered shards'
	// results are exact), so the paper's no-false-dismissal guarantee
	// holds only for the corpus slice the answered shards own. Always
	// false for a single-node search.
	Partial bool
	// ShardsAnswered is the number of shards whose results this stats
	// value merges. It equals the deployment's shard count when the
	// answer is complete, and it is 0 when the stats did not pass
	// through a scatter merge (plain single-node search).
	ShardsAnswered int
	// DTWEnvPruned counts candidates the envelope-vs-MBR lower bound
	// dismissed during a MetricDTW search, before any point data was
	// read. Zero for non-DTW searches.
	DTWEnvPruned int
	// DTWKeoghPruned counts envelope survivors the LB_Keogh refinement
	// bound dismissed before the exact dynamic program.
	DTWKeoghPruned int
	// DTWEvals counts exact DTW dynamic programs run (including early
	// abandoned ones).
	DTWEvals int
	// QuantPruned counts (query MBR, candidate) pairs the quantized-MBR
	// prefilter dismissed in phase 3 before any exact float64 bound was
	// read (Options.QuantizedMBR). Pruned pairs contribute no DnormEvals.
	// Zero when quantization is off.
	QuantPruned int
}

// Total returns the end-to-end wall-clock search duration. For merged
// scatter-gather stats each phase is the slowest shard's, so Total is an
// upper bound on observed wall-clock, not the cross-shard compute sum —
// that is CPUTime.
func (st SearchStats) Total() time.Duration { return st.Phase1 + st.Phase2 + st.Phase3 }

// Search runs the paper's SIMILARITY_SEARCH algorithm: partition the query
// (phase 1), prune with Dmbr through the R*-tree (phase 2), then prune
// with Dnorm and assemble solution intervals (phase 3). Results are
// ordered by ascending sequence id.
func (db *Database) Search(q *Sequence, eps float64) ([]Match, SearchStats, error) {
	return db.SearchCtx(context.Background(), q, eps)
}

// SearchCtx is Search honoring a context deadline or cancellation: the
// search checks ctx between phases and periodically inside the phase 2
// and phase 3 loops, abandoning the query with ctx's error as soon as a
// check fires. A canceled search records nothing into the metrics
// registry. The check granularity is a batch of candidates, so
// cancellation latency is bounded by one batch of metric work, not by the
// whole query.
func (db *Database) SearchCtx(ctx context.Context, q *Sequence, eps float64) ([]Match, SearchStats, error) {
	var st SearchStats
	if err := q.Validate(); err != nil {
		return nil, st, err
	}
	if q.Dim() != db.opts.Dim {
		return nil, st, fmt.Errorf("core: query dim %d, database dim %d: %w",
			q.Dim(), db.opts.Dim, geom.ErrDimensionMismatch)
	}
	if eps < 0 {
		return nil, st, fmt.Errorf("core: negative threshold %g", eps)
	}
	// Cache lookup. The write-sequence counter is snapshotted here,
	// before the read lock: any write that lands after this point moves
	// the counter past the snapshot, so the entry we might store below
	// can never be served stale.
	ref := db.rangeRef(q, eps)
	tr := obs.FromContext(ctx)
	if ms, cst, ok := ref.getRange(); ok {
		if tr != nil {
			tr.RecordSpan(obs.SpanFromContext(ctx), "cache-hit", 0, obs.Str("tier", "result"))
		}
		return ms, cst, nil
	}

	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.pg == nil {
		return nil, st, errors.New("core: database closed")
	}
	if err := searchCanceled(ctx); err != nil {
		return nil, st, err
	}
	st.TotalSequences = db.live

	// The whole query runs out of one pooled scratch: phase 1 segments
	// into its columnar arrays, phase 2 accumulates index hits into its
	// ref buffer, phase 3 reuses its Dnorm arrays per candidate. On a
	// warmed pool the only allocations left are the ones owned by the
	// result itself (match slice, intervals) — a no-match query allocates
	// nothing (enforced by TestHotpathAllocs).
	sc := getScratch()
	defer putScratch(sc)

	out, err := db.rangePhases(ctx, q, eps, sc, &st, tr)
	if err != nil {
		return nil, st, err
	}
	st.CPUTime = st.Total()
	db.met.RecordSearch(st)
	ref.putRange(out, st)
	return out, st, nil
}

// rangePhases runs the three phases of SIMILARITY_SEARCH out of the
// given scratch, accumulating into st. The caller holds the read lock,
// has verified the database is open, and owns stats finalization
// (CPUTime, metrics recording, caching). Shared by SearchCtx and the
// MetricD refinement path of SearchMetricCtx.
func (db *Database) rangePhases(ctx context.Context, q *Sequence, eps float64, sc *searchScratch, st *SearchStats, tr *obs.Trace) ([]Match, error) {
	// Phase 1: partition the query sequence.
	t0 := time.Now()
	sc.segmentQuery(q, db.opts.Partition)
	st.QueryMBRs = len(sc.qmbrs)
	st.Phase1 = time.Since(t0)
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "partition", st.Phase1,
			obs.Int("query_mbrs", st.QueryMBRs))
	}

	// Phase 2: first pruning. Any sequence owning an MBR within Dmbr ≤ ε
	// of any query MBR becomes a candidate. The flat kernel compares in
	// squared space and appends raw refs; one sort+dedup replaces the
	// candidate set map.
	t1 := time.Now()
	sc.refs = sc.refs[:0]
	for i := range sc.qmbrs {
		if err := searchCanceled(ctx); err != nil {
			return nil, err
		}
		var err error
		sc.refs, err = db.tree.AppendWithinDist(sc.qmbrs[i].Rect, eps, sc.refs)
		if err != nil {
			return nil, err
		}
	}
	st.IndexEntriesHit = len(sc.refs)
	sc.ids = appendSeqIDs(sc.ids[:0], sc.refs)
	ids := sortDedupUint32(sc.ids)
	st.CandidatesDmbr = len(ids)
	st.Phase2 = time.Since(t1)
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "filter", st.Phase2,
			obs.Int("candidates_in", st.TotalSequences),
			obs.Int("index_entries", st.IndexEntriesHit),
			obs.Int("candidates_out", st.CandidatesDmbr),
			obs.Float("pruned_frac", prunedFrac(st.TotalSequences, st.CandidatesDmbr)))
	}

	// Phase 3: second pruning with Dnorm; qualifying windows accumulate
	// into the solution interval.
	t2 := time.Now()
	var out []Match
	quant := db.opts.QuantizedMBR
	for ci, id := range ids {
		if ci%cancelCheckEvery == 0 {
			if err := searchCanceled(ctx); err != nil {
				return nil, err
			}
		}
		m, hit, evals, qpruned := phase3FlatQ(sc.qmbrs, &sc.p3, db.seqs[id], q.Len(), eps, quant)
		m.SeqID = id
		st.DnormEvals += evals
		st.QuantPruned += qpruned
		if hit {
			out = append(out, m)
		}
	}
	st.MatchesDnorm = len(out)
	st.Phase3 = time.Since(t2)
	if tr != nil {
		tr.RecordSpan(obs.SpanFromContext(ctx), "refine", st.Phase3,
			obs.Int("candidates_in", st.CandidatesDmbr),
			obs.Int("dnorm_evals", st.DnormEvals),
			obs.Int("matches", st.MatchesDnorm),
			obs.Float("pruned_frac", prunedFrac(st.CandidatesDmbr, st.MatchesDnorm)))
	}
	return out, nil
}

// phase3One runs the Dnorm pruning and solution-interval assembly for one
// candidate sequence. It is pure read-only metric work. The production
// search paths use phase3Flat — the allocation-free columnar form with
// identical results; this closure-based original is kept as the reference
// implementation the hot-path equivalence tests compare against (and as
// the readable statement of the algorithm).
//
// The sweep visits every Dnorm window once; each qualifying window
// contributes its points to the solution interval (Example 3), widened to
// full-query extent: the window covers the data matching query offsets
// [qm.Start, qm.End), and the Definition 6 windows containing it are
// len(Q) long, so the match region extends left by the query prefix before
// this MBR and right by the suffix after it. Without the widening,
// interval recall loses the fringes of every match.
func phase3One(qseg *Segmented, g *Segmented, qLen int, eps float64) (m Match, hit bool, evals int) {
	m = Match{Seq: g.Seq, MinDnorm: math.Inf(1)}
	for _, qm := range qseg.MBRs {
		calc := newDnormCalc(qm.Rect, qm.Count(), g)
		evals += len(g.MBRs)
		minDist := calc.sweep(eps, func(dist float64, pstart, pend int) {
			hit = true
			start := pstart - qm.Start
			end := pend + (qLen - qm.End)
			if start < 0 {
				start = 0
			}
			if end > g.Seq.Len() {
				end = g.Seq.Len()
			}
			m.Interval.Add(PointRange{Start: start, End: end})
		})
		if minDist < m.MinDnorm {
			m.MinDnorm = minDist
		}
	}
	return m, hit, evals
}

// CandidatesDmbr runs only phase 1+2 and returns the candidate set — the
// paper's ASmbr, needed to measure Figure 6/7's Dmbr-only pruning rate.
func (db *Database) CandidatesDmbr(q *Sequence, eps float64) (map[uint32]bool, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.pg == nil {
		return nil, errors.New("core: database closed")
	}
	qseg, err := NewSegmented(q, db.opts.Partition)
	if err != nil {
		return nil, err
	}
	candidates := make(map[uint32]bool)
	for _, qm := range qseg.MBRs {
		err := db.tree.WithinDist(qm.Rect, eps, func(it rtree.Item) bool {
			seqID, _ := it.Ref.Unpack()
			candidates[seqID] = true
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return candidates, nil
}

func sortUint32s(xs []uint32) {
	slices.Sort(xs)
}

// cancelCheckEvery is how many candidates a ctx-aware search processes
// between cancellation checks. Checking ctx.Err() takes a lock in some
// context implementations, so the batch keeps the check cost well under
// the metric work it gates while still bounding cancellation latency to
// one batch.
const cancelCheckEvery = 64

// searchCanceled translates a fired context into the error a ctx-aware
// query returns. The context's own error is wrapped, so callers can keep
// using errors.Is(err, context.DeadlineExceeded / context.Canceled).
func searchCanceled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: search canceled: %w", err)
	}
	return nil
}
