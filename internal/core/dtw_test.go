package core

import (
	"math/rand"
	"runtime/debug"
	"testing"

	"repro/internal/geom"
)

func pts1d(vals ...float64) []geom.Point {
	out := make([]geom.Point, len(vals))
	for i, v := range vals {
		out[i] = geom.Point{v}
	}
	return out
}

func TestDTWIdentical(t *testing.T) {
	a := pts1d(0.1, 0.5, 0.9, 0.5)
	d, err := DTW(a, a, -1)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("DTW(a,a) = %g, want 0", d)
	}
}

func TestDTWKnownValue(t *testing.T) {
	// a = (0, 1, 0), b = (0, 0, 1, 1, 0, 0): DTW stretches each of a's
	// steps over b's repeats and pays nothing, while no rigid length-3
	// window of b equals a.
	a := pts1d(0, 1, 0)
	b := pts1d(0, 0, 1, 1, 0, 0)
	d, err := DTW(a, b, -1)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("DTW = %g, want 0 (warping absorbs the repeat)", d)
	}
	// Euclidean sliding D cannot do this: no length-2 window of b equals a.
	if dd := DPoints(a, b); dd == 0 {
		t.Errorf("D = %g; expected > 0, the warping advantage", dd)
	}
}

func TestDTWSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		a := randWalkSeq(rng, 5+rng.Intn(30), 3).Points
		b := randWalkSeq(rng, 5+rng.Intn(30), 3).Points
		d1, err1 := DTW(a, b, -1)
		d2, err2 := DTW(b, a, -1)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !almostEqual(d1, d2) {
			t.Fatalf("DTW not symmetric: %g vs %g", d1, d2)
		}
	}
}

func TestDTWTimeShiftCheaperThanEuclidean(t *testing.T) {
	// A locally decelerated copy: DTW should consider it near-identical
	// while the rigid mean distance does not.
	base := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.7, 0.5, 0.3, 0.1}
	slowed := []float64{0.1, 0.1, 0.3, 0.3, 0.5, 0.7, 0.9, 0.7, 0.5, 0.3, 0.1}
	dtw, err := DTW(pts1d(base...), pts1d(slowed...), -1)
	if err != nil {
		t.Fatal(err)
	}
	euclid := DPoints(pts1d(base...), pts1d(slowed...))
	if dtw >= euclid {
		t.Errorf("DTW %g >= sliding D %g on warped copy", dtw, euclid)
	}
	if dtw > 1e-9 {
		t.Errorf("DTW of pure deceleration = %g, want 0", dtw)
	}
}

func TestDTWWindowConstraint(t *testing.T) {
	a := pts1d(0, 0.5, 1)
	b := pts1d(0, 0.5, 1)
	if _, err := DTW(a, b, 0); err != nil {
		t.Errorf("diagonal-only window on equal lengths should work: %v", err)
	}
	long := pts1d(0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
	if _, err := DTW(a, long, 1); err == nil {
		t.Error("window narrower than length difference accepted")
	}
	// Wider window accommodates the difference.
	if _, err := DTW(a, long, 4); err != nil {
		t.Errorf("wide window rejected: %v", err)
	}
}

func TestDTWEmpty(t *testing.T) {
	if _, err := DTW(nil, pts1d(1), -1); err == nil {
		t.Error("empty input accepted")
	}
}

func TestDTWWindowMonotone(t *testing.T) {
	// Widening the band can only lower (or keep) the distance.
	rng := rand.New(rand.NewSource(2))
	a := randWalkSeq(rng, 25, 3).Points
	b := randWalkSeq(rng, 25, 3).Points
	prev := -1.0
	for _, w := range []int{25, 10, 5, 2, 0} {
		d, err := DTW(a, b, w)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && d < prev-1e-12 {
			t.Fatalf("narrower window %d gave smaller DTW %g < %g", w, d, prev)
		}
		prev = d
	}
}

func TestRefineDTW(t *testing.T) {
	db := newTestDB(t, 3)
	rng := rand.New(rand.NewSource(3))
	seqs := populateWalks(t, db, 30, rng)
	q := &Sequence{Points: seqs[5].Points[10:40]}
	matches, _, err := db.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 2 {
		t.Skip("not enough matches to rank")
	}
	ranked := RefineDTW(q, matches, -1)
	if len(ranked) != len(matches) {
		t.Fatalf("RefineDTW dropped matches: %d vs %d", len(ranked), len(matches))
	}
	// The exact source should rank first (DTW 0 on its own subsequence).
	if ranked[0].SeqID != 5 {
		t.Errorf("top-ranked = %d, want the source sequence 5", ranked[0].SeqID)
	}
	// Ranks must be by ascending DTW; spot-check first two.
	d0 := mustDTW(t, q.Points, intervalPoints(ranked[0]))
	d1 := mustDTW(t, q.Points, intervalPoints(ranked[1]))
	if d0 > d1+1e-9 {
		t.Errorf("ranking not ascending: %g then %g", d0, d1)
	}
}

func intervalPoints(m Match) []geom.Point {
	var best PointRange
	for _, r := range m.Interval.Ranges() {
		if r.Len() > best.Len() {
			best = r
		}
	}
	return m.Seq.Points[best.Start:best.End]
}

func mustDTW(t *testing.T, a, b []geom.Point) float64 {
	t.Helper()
	d, err := DTW(a, b, -1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDTWAllocs is the DP-scratch pooling gate: after warming, repeated
// DTW calls reuse the pooled rows and point buffers and allocate nothing.
// Before the pooling fix every call allocated two DP rows per invocation.
func TestDTWAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops Puts under -race; alloc gate needs a non-race build")
	}
	rng := rand.New(rand.NewSource(41))
	a := randWalkSeq(rng, 60, 4).Points
	b := randWalkSeq(rng, 75, 4).Points
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for i := 0; i < 3; i++ {
		if _, err := DTW(a, b, -1); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DTW(a, b, -1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed DTW allocates %.1f times per run, want 0", allocs)
	}
}

// TestRefineDTWCheckedTieAndTailOrder is the regression for the ranking
// rewrite: equal-distance matches must keep their input order (the old
// selection pass was not stable), and matches the window cannot score
// must keep their input order at the tail, with the unaligned count
// reported.
func TestRefineDTWCheckedTieAndTailOrder(t *testing.T) {
	mk := func(id uint32, pts []geom.Point) Match {
		seq := &Sequence{Label: "s", Points: pts}
		var iv IntervalSet
		iv.Add(PointRange{Start: 0, End: len(pts)})
		return Match{SeqID: id, Seq: seq, Interval: iv}
	}
	q := &Sequence{Label: "q", Points: pts1d(0, 0.5, 1)}
	same := pts1d(0, 0.5, 1)                    // DTW 0 — tied
	far := pts1d(0.9, 0.2, 0.7)                 // DTW > 0
	long := pts1d(0, 0, 0, 0, 0, 0, 0, 0, 0, 0) // length diff 7 > window 2: unscorable

	in := []Match{mk(10, long), mk(11, same), mk(12, far), mk(13, same), mk(14, long), mk(15, same)}
	out, unaligned := RefineDTWChecked(q, in, 2)
	if unaligned != 2 {
		t.Fatalf("unaligned = %d, want 2", unaligned)
	}
	var order []uint32
	for _, m := range out {
		order = append(order, m.SeqID)
	}
	// Tied zero-distance matches 11, 13, 15 keep input order, then 12,
	// then the unscorable 10, 14 in input order at the tail.
	want := []uint32{11, 13, 15, 12, 10, 14}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// An empty interval is also unscorable and lands in the tail.
	empty := Match{SeqID: 20, Seq: &Sequence{Label: "e", Points: same}}
	out, unaligned = RefineDTWChecked(q, []Match{empty, mk(21, same)}, -1)
	if unaligned != 1 || out[0].SeqID != 21 || out[1].SeqID != 20 {
		t.Fatalf("empty-interval match not tailed: unaligned=%d order=%v,%v", unaligned, out[0].SeqID, out[1].SeqID)
	}
}
