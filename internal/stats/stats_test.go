package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{2, 4, 6}); !almostEqual(got, 4) {
		t.Errorf("Mean = %g", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("single-sample StdDev = %g", got)
	}
	// Population stddev of {2,4,4,4,5,5,7,9} is 2.
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if got := StdDev([]float64{3, 3, 3}); got != 0 {
		t.Errorf("constant StdDev = %g", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("q=%g: %v", c.q, err)
		}
		if !almostEqual(got, c.want) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty quantile accepted")
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := Quantile(xs, 1.1); err == nil {
		t.Error("q > 1 accepted")
	}
	if _, err := Quantile(xs, math.NaN()); err == nil {
		t.Error("NaN q accepted")
	}
	if got, _ := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("singleton quantile = %g", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-12 {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestMedianMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(99)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		var want float64
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		if got := Median(xs); !almostEqual(got, want) {
			t.Fatalf("n=%d: Median = %g, want %g", n, got, want)
		}
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%g, %g)", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Errorf("empty MinMax = (%g, %g)", lo, hi)
	}
}
