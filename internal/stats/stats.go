// Package stats provides the small set of summary statistics the
// experiment harness reports: mean, standard deviation, and quantiles with
// linear interpolation. Implemented here rather than pulled in, per the
// stdlib-only constraint.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs with linear
// interpolation between order statistics (type-7, the common default).
// It errors on an empty slice or out-of-range q.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %g outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median is Quantile at 0.5, returning 0 on error for convenience in
// report code (empty inputs only).
func Median(xs []float64) float64 {
	m, err := Quantile(xs, 0.5)
	if err != nil {
		return 0
	}
	return m
}

// MinMax returns the extremes (0, 0 for an empty slice).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}
