package video

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// The paper's frames are "characterized by multiple feature attributes
// such as color, texture or shape". Beyond the mean-color extractors in
// video.go, this file adds a texture feature (edge energy), a luminance
// histogram, and composition helpers so sequences of any dimensionality
// can be built from the same rendered frames.

// Luminance returns the BT.601 luma of a pixel.
func Luminance(c RGB) float64 {
	return 0.299*c.R + 0.587*c.G + 0.114*c.B
}

// EdgeEnergy measures texture as the mean gradient magnitude of the
// frame's luminance (central differences, interior pixels; 1×1 and 1×n
// frames have zero energy in the missing direction). The result is
// normalized to [0,1] by the maximum possible gradient.
func EdgeEnergy(f *Frame) float64 {
	if f.W < 2 && f.H < 2 {
		return 0
	}
	var sum float64
	var n int
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			var gx, gy float64
			if x > 0 && x < f.W-1 {
				gx = (Luminance(f.At(x+1, y)) - Luminance(f.At(x-1, y))) / 2
			}
			if y > 0 && y < f.H-1 {
				gy = (Luminance(f.At(x, y+1)) - Luminance(f.At(x, y-1))) / 2
			}
			sum += math.Hypot(gx, gy)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	// The largest per-axis central difference is 1/2, so the magnitude is
	// at most √2/2; scale into [0,1].
	return sum / float64(n) / (math.Sqrt2 / 2)
}

// LuminanceHistogram returns a normalized luminance histogram with the
// given number of bins (each component in [0,1], summing to 1).
func LuminanceHistogram(f *Frame, bins int) (geom.Point, error) {
	if bins < 1 {
		return nil, fmt.Errorf("video: invalid bin count %d", bins)
	}
	h := make(geom.Point, bins)
	for _, px := range f.Pix {
		b := int(Luminance(px) * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		h[b]++
	}
	n := float64(len(f.Pix))
	for i := range h {
		h[i] /= n
	}
	return h, nil
}

// ColorTexture is a 4-dimensional extractor: mean RGB plus edge energy —
// the "color and texture" combination the paper's introduction sketches.
func ColorTexture(f *Frame) geom.Point {
	c := MeanColorRGB(f)
	return append(c, EdgeEnergy(f))
}

// Compose fuses several extractors into one by concatenating their
// feature vectors.
func Compose(extractors ...Extractor) Extractor {
	return func(f *Frame) geom.Point {
		var out geom.Point
		for _, e := range extractors {
			out = append(out, e(f)...)
		}
		return out
	}
}

// HistogramExtractor adapts LuminanceHistogram to the Extractor shape for
// a fixed bin count (panics on invalid bins at construction time, not per
// frame).
func HistogramExtractor(bins int) Extractor {
	if bins < 1 {
		panic(fmt.Sprintf("video: invalid bin count %d", bins))
	}
	return func(f *Frame) geom.Point {
		h, err := LuminanceHistogram(f, bins)
		if err != nil {
			panic(err) // unreachable: bins validated above
		}
		return h
	}
}
