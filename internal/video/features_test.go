package video

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func flatFrame(w, h int, c RGB) *Frame {
	f := NewFrame(w, h)
	for i := range f.Pix {
		f.Pix[i] = c
	}
	return f
}

func TestLuminance(t *testing.T) {
	if got := Luminance(RGB{1, 1, 1}); !almostEqual(got, 1) {
		t.Errorf("white luma = %g", got)
	}
	if got := Luminance(RGB{0, 0, 0}); got != 0 {
		t.Errorf("black luma = %g", got)
	}
	if g, r := Luminance(RGB{0, 1, 0}), Luminance(RGB{1, 0, 0}); g <= r {
		t.Errorf("green luma %g should exceed red %g", g, r)
	}
}

func TestEdgeEnergyFlatFrameIsZero(t *testing.T) {
	f := flatFrame(8, 8, RGB{0.5, 0.5, 0.5})
	if got := EdgeEnergy(f); got != 0 {
		t.Errorf("flat frame energy = %g", got)
	}
}

func TestEdgeEnergyDetectsContrast(t *testing.T) {
	// Vertical black/white split: strong horizontal gradient.
	f := NewFrame(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if x < 4 {
				f.Set(x, y, RGB{0, 0, 0})
			} else {
				f.Set(x, y, RGB{1, 1, 1})
			}
		}
	}
	split := EdgeEnergy(f)
	if split <= 0 {
		t.Fatal("split frame has zero energy")
	}
	noisy := flatFrame(8, 8, RGB{0.5, 0.5, 0.5})
	if EdgeEnergy(noisy) >= split {
		t.Error("flat frame should have less energy than split frame")
	}
	if split > 1 {
		t.Errorf("energy %g exceeds normalized bound", split)
	}
}

func TestEdgeEnergyDegenerateFrames(t *testing.T) {
	if got := EdgeEnergy(flatFrame(1, 1, RGB{1, 0, 0})); got != 0 {
		t.Errorf("1x1 energy = %g", got)
	}
	if got := EdgeEnergy(flatFrame(1, 5, RGB{1, 0, 0})); got != 0 {
		t.Errorf("1x5 flat energy = %g", got)
	}
}

func TestLuminanceHistogram(t *testing.T) {
	f := NewFrame(2, 1)
	f.Set(0, 0, RGB{0, 0, 0}) // luma 0 -> bin 0
	f.Set(1, 0, RGB{1, 1, 1}) // luma 1 -> clamped to last bin
	h, err := LuminanceHistogram(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h[0], 0.5) || !almostEqual(h[3], 0.5) {
		t.Errorf("histogram = %v", h)
	}
	var sum float64
	for _, v := range h {
		sum += v
	}
	if !almostEqual(sum, 1) {
		t.Errorf("histogram sums to %g", sum)
	}
	if _, err := LuminanceHistogram(f, 0); err == nil {
		t.Error("0 bins accepted")
	}
}

func TestColorTextureDim(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	st, err := GenerateStream(rng, 10, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := ColorTexture(st.Frames[0])
	if len(p) != 4 {
		t.Fatalf("ColorTexture dim = %d", len(p))
	}
	if !p.InUnitCube() {
		t.Errorf("features escape unit cube: %v", p)
	}
}

func TestCompose(t *testing.T) {
	ext := Compose(MeanColorRGB, HistogramExtractor(4))
	f := flatFrame(4, 4, RGB{0.2, 0.4, 0.6})
	p := ext(f)
	if len(p) != 7 {
		t.Fatalf("composed dim = %d, want 7", len(p))
	}
}

func TestHistogramExtractorPanicsOnBadBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HistogramExtractor(0)
}

// TestHighDimVideoPipeline indexes 7-dimensional video features end to
// end: color + texture + a small histogram, searched with the same
// machinery.
func TestHighDimVideoPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ext := Compose(ColorTexture, HistogramExtractor(3))
	db, err := core.NewDatabase(core.Options{Dim: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var seqs []*core.Sequence
	for i := 0; i < 12; i++ {
		st, err := GenerateStream(rng, 80+rng.Intn(60), StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		s := ExtractSequence(st, ext)
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, s)
	}
	q := &core.Sequence{Points: seqs[4].Points[10:40]}
	matches, _, err := db.Search(q, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.SeqID == 4 {
			found = true
		}
	}
	if !found {
		t.Error("7-dim pipeline missed the source sequence")
	}
	// No false dismissal against the exact scan.
	exact, err := db.SequentialSearch(q, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[uint32]bool)
	for _, m := range matches {
		got[m.SeqID] = true
	}
	for _, r := range exact {
		if !got[r.SeqID] {
			t.Errorf("dismissed %d", r.SeqID)
		}
	}
}
