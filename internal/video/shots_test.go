package video

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func TestDetectShotsOnGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	var tp, fp, fn int
	for trial := 0; trial < 10; trial++ {
		st, err := GenerateStream(rng, 300, StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		seq := ExtractSequence(st, MeanColorRGB)
		thresh := AdaptiveCutThreshold(seq, 3)
		got := DetectShots(seq, thresh)
		want := st.ShotStarts

		inWant := make(map[int]bool, len(want))
		for _, s := range want {
			inWant[s] = true
		}
		inGot := make(map[int]bool, len(got))
		for _, s := range got {
			inGot[s] = true
		}
		for _, s := range got {
			if inWant[s] {
				tp++
			} else {
				fp++
			}
		}
		for _, s := range want {
			if !inGot[s] {
				fn++
			}
		}
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	if precision < 0.9 || recall < 0.9 {
		t.Errorf("shot detection precision=%.3f recall=%.3f, want >= 0.9 each (tp=%d fp=%d fn=%d)",
			precision, recall, tp, fp, fn)
	}
}

func TestDetectShotsEdges(t *testing.T) {
	if got := DetectShots(&core.Sequence{}, 0.1); got != nil {
		t.Errorf("empty sequence shots = %v", got)
	}
	one := &core.Sequence{Points: []geom.Point{{0.5, 0.5, 0.5}}}
	if got := DetectShots(one, 0.1); len(got) != 1 || got[0] != 0 {
		t.Errorf("single frame shots = %v", got)
	}
	if th := AdaptiveCutThreshold(one, 3); !math.IsInf(th, 1) {
		t.Errorf("single-frame threshold = %g, want +Inf", th)
	}
}

func TestDetectShotsFlatSequence(t *testing.T) {
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Point{0.4, 0.4, 0.4}
	}
	seq := &core.Sequence{Points: pts}
	got := DetectShots(seq, 0.01)
	if len(got) != 1 {
		t.Errorf("flat sequence produced %d shots, want 1", len(got))
	}
}

func TestKeyFrames(t *testing.T) {
	keys := KeyFrames(100, []int{0, 40, 80})
	want := []int{20, 60, 90}
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("key %d = %d, want %d", i, keys[i], want[i])
		}
	}
	if KeyFrames(10, nil) != nil {
		t.Error("no shots should yield no keys")
	}
}

// TestKeyFrameSearchMissesWhatMBRSearchFinds demonstrates the paper's
// motivating claim (Section 1): "the search by a key frame does not
// guarantee the correctness since it cannot always summarize all the
// frames of a shot." We build a shot whose frames drift across the feature
// space; a query matching the shot's tail is far from the key (middle)
// frame but still within threshold of the actual frames — key-frame search
// dismisses it, MBR search does not.
func TestKeyFrameSearchMissesWhatMBRSearchFinds(t *testing.T) {
	// One long "shot": features drifting linearly from 0.2 to 0.8.
	n := 60
	pts := make([]geom.Point, n)
	for i := range pts {
		v := 0.2 + 0.6*float64(i)/float64(n-1)
		pts[i] = geom.Point{v, v, v}
	}
	seq := &core.Sequence{Points: pts}

	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Add(seq); err != nil {
		t.Fatal(err)
	}

	// Query: the tail of the drift.
	q := &core.Sequence{Points: pts[50:]}
	const eps = 0.05

	// Key-frame search: compare the query's mean point against the shot's
	// key frame only.
	key := pts[KeyFrames(n, []int{0})[0]]
	qMean := make(geom.Point, 3)
	for _, p := range q.Points {
		for k := range qMean {
			qMean[k] += p[k] / float64(len(q.Points))
		}
	}
	if key.Dist(qMean) <= eps {
		t.Fatalf("example construction broken: key frame distance %g <= eps", key.Dist(qMean))
	}

	// MBR search finds the real match.
	matches, _, err := db.Search(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("MBR search found %d matches, want 1", len(matches))
	}
}
