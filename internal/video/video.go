// Package video is the video substrate: it synthesizes shot-structured
// frame streams, renders each frame as a small raster, and extracts color
// features (mean RGB or mean YCbCr) so that each frame becomes one point
// of a multidimensional sequence — the paper's "video stream is modeled as
// a trail of points in a multidimensional data space".
//
// The paper's corpus is 1408 real TV news/drama/documentary streams we do
// not have; this package substitutes streams with the structural property
// the paper itself credits for its video results: "the frames in the same
// shot of a video stream have very similar feature values" (Section
// 4.2.2). Frames within a shot share a slowly drifting base color with
// small jitter; shot boundaries jump to a fresh base color.
package video

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
)

// RGB is one pixel with components in [0,1].
type RGB struct {
	R, G, B float64
}

// Frame is a row-major raster of RGB pixels.
type Frame struct {
	W, H int
	Pix  []RGB
}

// NewFrame allocates a zeroed W×H frame.
func NewFrame(w, h int) *Frame {
	return &Frame{W: w, H: h, Pix: make([]RGB, w*h)}
}

// At returns the pixel at (x, y).
func (f *Frame) At(x, y int) RGB { return f.Pix[y*f.W+x] }

// Set writes the pixel at (x, y).
func (f *Frame) Set(x, y int, c RGB) { f.Pix[y*f.W+x] = c }

// MeanColorRGB averages all pixels into a 3-dimensional feature point —
// the paper's "averaging color values of pixels of a frame".
func MeanColorRGB(f *Frame) geom.Point {
	var r, g, b float64
	for _, px := range f.Pix {
		r += px.R
		g += px.G
		b += px.B
	}
	n := float64(len(f.Pix))
	return geom.Point{r / n, g / n, b / n}
}

// RGBToYCbCr converts one pixel to the BT.601 YCbCr space, with Cb and Cr
// shifted into [0,1] (0.5 = neutral chroma).
func RGBToYCbCr(c RGB) (y, cb, cr float64) {
	y = 0.299*c.R + 0.587*c.G + 0.114*c.B
	cb = 0.5 + (c.B-y)/1.772
	cr = 0.5 + (c.R-y)/1.402
	return y, clamp01(cb), clamp01(cr)
}

// MeanColorYCbCr averages all pixels in the YCbCr space (the paper's
// alternative "RGB or YCbCr color space").
func MeanColorYCbCr(f *Frame) geom.Point {
	var sy, scb, scr float64
	for _, px := range f.Pix {
		y, cb, cr := RGBToYCbCr(px)
		sy += y
		scb += cb
		scr += cr
	}
	n := float64(len(f.Pix))
	return geom.Point{sy / n, scb / n, scr / n}
}

// Extractor maps a frame to its feature point.
type Extractor func(*Frame) geom.Point

// StreamConfig controls synthetic stream generation.
type StreamConfig struct {
	// FrameW, FrameH size the rendered rasters (default 16×16).
	FrameW, FrameH int
	// MinShotLen and MaxShotLen bound shot durations in frames
	// (defaults 12 and 48).
	MinShotLen, MaxShotLen int
	// Jitter is the per-frame, per-pixel noise amplitude inside a shot
	// (default 0.02).
	Jitter float64
	// Drift is the per-frame drift of the shot base color, modeling slow
	// camera or lighting motion (default 0.003).
	Drift float64
	// MinCut is the minimum Euclidean distance (in RGB space) between
	// consecutive shots' base colors, making cuts visible (default 0.2).
	MinCut float64
	// PaletteSpread confines a stream's shot base colors to a box of this
	// half-width around a per-stream palette center, modeling that one
	// program (a newscast, a drama episode) keeps a consistent look while
	// different programs differ (default 0.25). Zero-spread streams are
	// produced by setting it negative; the zero value means the default.
	PaletteSpread float64
}

// DefaultStreamConfig returns the defaults documented on StreamConfig.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		FrameW: 16, FrameH: 16,
		MinShotLen: 12, MaxShotLen: 48,
		Jitter: 0.02, Drift: 0.003, MinCut: 0.2,
		PaletteSpread: 0.25,
	}
}

func (c *StreamConfig) fillDefaults() {
	d := DefaultStreamConfig()
	if c.FrameW == 0 {
		c.FrameW = d.FrameW
	}
	if c.FrameH == 0 {
		c.FrameH = d.FrameH
	}
	if c.MinShotLen == 0 {
		c.MinShotLen = d.MinShotLen
	}
	if c.MaxShotLen == 0 {
		c.MaxShotLen = d.MaxShotLen
	}
	if c.Jitter == 0 {
		c.Jitter = d.Jitter
	}
	if c.Drift == 0 {
		c.Drift = d.Drift
	}
	if c.MinCut == 0 {
		c.MinCut = d.MinCut
	}
	if c.PaletteSpread == 0 {
		c.PaletteSpread = d.PaletteSpread
	}
}

func (c StreamConfig) validate() error {
	if c.FrameW < 1 || c.FrameH < 1 {
		return fmt.Errorf("video: invalid frame size %dx%d", c.FrameW, c.FrameH)
	}
	if c.MinShotLen < 1 || c.MaxShotLen < c.MinShotLen {
		return fmt.Errorf("video: invalid shot lengths [%d,%d]", c.MinShotLen, c.MaxShotLen)
	}
	if c.Jitter < 0 || c.Drift < 0 || c.MinCut < 0 {
		return fmt.Errorf("video: negative noise parameter")
	}
	return nil
}

// Stream is a rendered synthetic video: its frames plus the ground-truth
// shot boundaries (frame indices at which new shots begin; index 0 is
// always a boundary).
type Stream struct {
	Frames     []*Frame
	ShotStarts []int
}

// GenerateStream renders a stream of exactly n frames.
func GenerateStream(rng *rand.Rand, n int, cfg StreamConfig) (*Stream, error) {
	cfg.fillDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("video: invalid length %d", n)
	}
	st := &Stream{Frames: make([]*Frame, 0, n)}
	palette := randRGB(rng)
	base := paletteShotBase(rng, palette, cfg.PaletteSpread)
	remainingInShot := 0
	for i := 0; i < n; i++ {
		if remainingInShot == 0 {
			if i > 0 {
				base = nextShotBase(rng, palette, base, cfg)
			}
			st.ShotStarts = append(st.ShotStarts, i)
			remainingInShot = cfg.MinShotLen + rng.Intn(cfg.MaxShotLen-cfg.MinShotLen+1)
		}
		st.Frames = append(st.Frames, renderFrame(rng, base, cfg))
		base = driftRGB(rng, base, cfg.Drift)
		remainingInShot--
	}
	return st, nil
}

// renderFrame rasterizes one frame: the shot base color, a diagonal
// luminance gradient (so frames are not flat fields), and per-pixel noise.
func renderFrame(rng *rand.Rand, base RGB, cfg StreamConfig) *Frame {
	f := NewFrame(cfg.FrameW, cfg.FrameH)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			grad := 0.05 * (float64(x)/float64(f.W) + float64(y)/float64(f.H) - 1)
			f.Set(x, y, RGB{
				R: clamp01(base.R + grad + cfg.Jitter*(rng.Float64()*2-1)),
				G: clamp01(base.G + grad + cfg.Jitter*(rng.Float64()*2-1)),
				B: clamp01(base.B + grad + cfg.Jitter*(rng.Float64()*2-1)),
			})
		}
	}
	return f
}

// ExtractSequence maps every frame through the extractor into a sequence.
func ExtractSequence(st *Stream, extract Extractor) *core.Sequence {
	pts := make([]geom.Point, len(st.Frames))
	for i, f := range st.Frames {
		pts[i] = extract(f)
	}
	return &core.Sequence{Points: pts}
}

// GenerateFeatureSequence renders a stream and extracts mean-RGB features
// in one step — a Figure 5-style sequence.
func GenerateFeatureSequence(rng *rand.Rand, n int, cfg StreamConfig) (*core.Sequence, error) {
	st, err := GenerateStream(rng, n, cfg)
	if err != nil {
		return nil, err
	}
	return ExtractSequence(st, MeanColorRGB), nil
}

// GenerateSet produces count feature sequences with lengths uniform in
// [minLen, maxLen] — the video half of the paper's Table 2.
func GenerateSet(rng *rand.Rand, count, minLen, maxLen int, cfg StreamConfig) ([]*core.Sequence, error) {
	if count < 0 || minLen < 1 || maxLen < minLen {
		return nil, fmt.Errorf("video: invalid set spec count=%d len=[%d,%d]", count, minLen, maxLen)
	}
	out := make([]*core.Sequence, count)
	for i := range out {
		n := minLen + rng.Intn(maxLen-minLen+1)
		s, err := GenerateFeatureSequence(rng, n, cfg)
		if err != nil {
			return nil, err
		}
		s.Label = fmt.Sprintf("video-%04d", i)
		out[i] = s
	}
	return out, nil
}

func randRGB(rng *rand.Rand) RGB {
	return RGB{rng.Float64(), rng.Float64(), rng.Float64()}
}

// paletteShotBase draws a shot base color inside the stream's palette box.
func paletteShotBase(rng *rand.Rand, palette RGB, spread float64) RGB {
	if spread < 0 {
		spread = 0
	}
	return RGB{
		R: clamp01(palette.R + spread*(rng.Float64()*2-1)),
		G: clamp01(palette.G + spread*(rng.Float64()*2-1)),
		B: clamp01(palette.B + spread*(rng.Float64()*2-1)),
	}
}

// nextShotBase draws base colors from the palette until one is at least
// MinCut away from the previous shot's, so cuts are actual
// discontinuities. After a bounded number of attempts (tight palettes can
// make the constraint infeasible near corners) it takes the farthest draw.
func nextShotBase(rng *rand.Rand, palette, prev RGB, cfg StreamConfig) RGB {
	best := paletteShotBase(rng, palette, cfg.PaletteSpread)
	bestD := rgbDist(best, prev)
	for try := 0; try < 32 && bestD < cfg.MinCut; try++ {
		c := paletteShotBase(rng, palette, cfg.PaletteSpread)
		if d := rgbDist(c, prev); d > bestD {
			best, bestD = c, d
		}
	}
	return best
}

func rgbDist(a, b RGB) float64 {
	return math.Sqrt((a.R-b.R)*(a.R-b.R) + (a.G-b.G)*(a.G-b.G) + (a.B-b.B)*(a.B-b.B))
}

func driftRGB(rng *rand.Rand, c RGB, drift float64) RGB {
	return RGB{
		R: clamp01(c.R + drift*(rng.Float64()*2-1)),
		G: clamp01(c.G + drift*(rng.Float64()*2-1)),
		B: clamp01(c.B + drift*(rng.Float64()*2-1)),
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
