package video

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestFrameAccessors(t *testing.T) {
	f := NewFrame(4, 3)
	if f.W != 4 || f.H != 3 || len(f.Pix) != 12 {
		t.Fatalf("NewFrame shape wrong: %+v", f)
	}
	c := RGB{0.1, 0.2, 0.3}
	f.Set(2, 1, c)
	if f.At(2, 1) != c {
		t.Errorf("At/Set round trip failed")
	}
}

func TestMeanColorRGB(t *testing.T) {
	f := NewFrame(2, 1)
	f.Set(0, 0, RGB{0, 0.5, 1})
	f.Set(1, 0, RGB{1, 0.5, 0})
	got := MeanColorRGB(f)
	want := geom.Point{0.5, 0.5, 0.5}
	if !got.Equal(want) {
		t.Errorf("MeanColorRGB = %v, want %v", got, want)
	}
}

func TestRGBToYCbCr(t *testing.T) {
	// Pure white: Y=1, neutral chroma.
	y, cb, cr := RGBToYCbCr(RGB{1, 1, 1})
	if !almostEqual(y, 1) || !almostEqual(cb, 0.5) || !almostEqual(cr, 0.5) {
		t.Errorf("white -> (%g,%g,%g), want (1,0.5,0.5)", y, cb, cr)
	}
	// Pure black: Y=0, neutral chroma.
	y, cb, cr = RGBToYCbCr(RGB{0, 0, 0})
	if !almostEqual(y, 0) || !almostEqual(cb, 0.5) || !almostEqual(cr, 0.5) {
		t.Errorf("black -> (%g,%g,%g), want (0,0.5,0.5)", y, cb, cr)
	}
	// Pure red: Cr at maximum.
	_, _, cr = RGBToYCbCr(RGB{1, 0, 0})
	if !almostEqual(cr, 1) {
		t.Errorf("red Cr = %g, want 1", cr)
	}
	// Pure blue: Cb at maximum.
	_, cb, _ = RGBToYCbCr(RGB{0, 0, 1})
	if !almostEqual(cb, 1) {
		t.Errorf("blue Cb = %g, want 1", cb)
	}
}

func TestMeanColorYCbCrInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewFrame(8, 8)
	for i := range f.Pix {
		f.Pix[i] = RGB{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	p := MeanColorYCbCr(f)
	if !p.InUnitCube() {
		t.Errorf("YCbCr mean %v escapes unit cube", p)
	}
}

func TestGenerateStreamShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	st, err := GenerateStream(rng, 200, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Frames) != 200 {
		t.Fatalf("frames = %d", len(st.Frames))
	}
	if len(st.ShotStarts) < 200/48 {
		t.Errorf("only %d shots in 200 frames", len(st.ShotStarts))
	}
	if st.ShotStarts[0] != 0 {
		t.Errorf("first shot starts at %d, want 0", st.ShotStarts[0])
	}
	for i := 1; i < len(st.ShotStarts); i++ {
		gap := st.ShotStarts[i] - st.ShotStarts[i-1]
		if gap < 12 || gap > 48 {
			t.Errorf("shot %d length %d outside [12,48]", i-1, gap)
		}
	}
}

func TestGenerateStreamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := GenerateStream(rng, 0, StreamConfig{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := GenerateStream(rng, 10, StreamConfig{MinShotLen: 10, MaxShotLen: 5}); err == nil {
		t.Error("inverted shot range accepted")
	}
	if _, err := GenerateStream(rng, 10, StreamConfig{Jitter: -1}); err == nil {
		t.Error("negative jitter accepted")
	}
}

// TestShotStructureVisibleInFeatures is the load-bearing property of the
// substitution: within a shot, consecutive feature points are much closer
// than across a cut.
func TestShotStructureVisibleInFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	st, err := GenerateStream(rng, 400, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	seq := ExtractSequence(st, MeanColorRGB)
	isCut := make(map[int]bool)
	for _, s := range st.ShotStarts {
		if s > 0 {
			isCut[s] = true
		}
	}
	var within, across float64
	var nWithin, nAcross int
	for i := 1; i < seq.Len(); i++ {
		d := seq.Points[i].Dist(seq.Points[i-1])
		if isCut[i] {
			across += d
			nAcross++
		} else {
			within += d
			nWithin++
		}
	}
	if nAcross == 0 || nWithin == 0 {
		t.Fatal("degenerate stream: no cuts or no within-shot steps")
	}
	within /= float64(nWithin)
	across /= float64(nAcross)
	if across < 5*within {
		t.Errorf("cut step %g not clearly larger than within-shot step %g", across, within)
	}
}

func TestExtractSequenceInUnitCube(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st, _ := GenerateStream(rng, 100, StreamConfig{})
	for _, ext := range []Extractor{MeanColorRGB, MeanColorYCbCr} {
		seq := ExtractSequence(st, ext)
		if seq.Len() != 100 {
			t.Fatalf("extracted %d points", seq.Len())
		}
		if !seq.InUnitCube() {
			t.Error("features escape unit cube")
		}
		if err := seq.Validate(); err != nil {
			t.Errorf("invalid sequence: %v", err)
		}
	}
}

func TestGenerateFeatureSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s, err := GenerateFeatureSequence(rng, 150, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 150 || s.Dim() != 3 {
		t.Errorf("shape = (%d, %d)", s.Len(), s.Dim())
	}
}

func TestGenerateSet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	set, err := GenerateSet(rng, 20, 56, 512, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 20 {
		t.Fatalf("set size = %d", len(set))
	}
	for _, s := range set {
		if s.Len() < 56 || s.Len() > 512 {
			t.Errorf("length %d outside range", s.Len())
		}
	}
	if _, err := GenerateSet(rng, 5, 0, 10, StreamConfig{}); err == nil {
		t.Error("minLen=0 accepted")
	}
}

// TestVideoPartitionsTighterThanNoise confirms the clustering that drives
// the paper's Figures 7 and 9: shot-structured sequences partition into
// fewer MBRs per point than unstructured noise.
func TestVideoPartitionsTighterThanNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := core.DefaultPartitionConfig()
	vid, err := GenerateFeatureSequence(rng, 300, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	noisePts := make([]geom.Point, 300)
	for i := range noisePts {
		noisePts[i] = geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	gv, _ := core.NewSegmented(vid, cfg)
	gn, _ := core.NewSegmented(&core.Sequence{Points: noisePts}, cfg)
	if len(gv.MBRs) >= len(gn.MBRs) {
		t.Errorf("video MBRs %d >= noise MBRs %d; expected tighter clustering", len(gv.MBRs), len(gn.MBRs))
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-0.5) != 0 || clamp01(1.5) != 1 || clamp01(0.25) != 0.25 {
		t.Error("clamp01 broken")
	}
}
