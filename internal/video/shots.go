package video

import (
	"math"

	"repro/internal/core"
)

// DetectShots segments a feature sequence into shots by thresholding the
// distance between consecutive feature points: index i (> 0) starts a new
// shot when d(seq[i-1], seq[i]) > threshold. Index 0 always starts the
// first shot. This is the classic hard-cut detector the paper's
// introduction alludes to when discussing per-shot key frames.
func DetectShots(seq *core.Sequence, threshold float64) []int {
	if seq.Len() == 0 {
		return nil
	}
	shots := []int{0}
	for i := 1; i < seq.Len(); i++ {
		if seq.Points[i-1].Dist(seq.Points[i]) > threshold {
			shots = append(shots, i)
		}
	}
	return shots
}

// AdaptiveCutThreshold returns mean + k·stddev of the consecutive-frame
// feature distances — a data-driven threshold for DetectShots. For
// sequences with a single frame it returns +Inf (no cuts are detectable).
func AdaptiveCutThreshold(seq *core.Sequence, k float64) float64 {
	n := seq.Len() - 1
	if n < 1 {
		return math.Inf(1)
	}
	var sum float64
	dists := make([]float64, n)
	for i := 1; i < seq.Len(); i++ {
		d := seq.Points[i-1].Dist(seq.Points[i])
		dists[i-1] = d
		sum += d
	}
	mean := sum / float64(n)
	var varSum float64
	for _, d := range dists {
		varSum += (d - mean) * (d - mean)
	}
	return mean + k*math.Sqrt(varSum/float64(n))
}

// KeyFrames returns one representative frame index per shot — the middle
// frame, the common heuristic. The paper's point (Section 1) is that
// searching only these frames "does not guarantee the correctness since it
// cannot always summarize all the frames of a shot"; mdseq searches MBRs
// over every frame instead. KeyFrames exists so that comparison can be
// made (see the shots tests).
func KeyFrames(seqLen int, shotStarts []int) []int {
	if len(shotStarts) == 0 {
		return nil
	}
	keys := make([]int, len(shotStarts))
	for i, start := range shotStarts {
		end := seqLen
		if i+1 < len(shotStarts) {
			end = shotStarts[i+1]
		}
		keys[i] = start + (end-start)/2
	}
	return keys
}
