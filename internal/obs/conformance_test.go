package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusStrictConformance populates a registry from many
// goroutines while exposition runs concurrently, then strictly parses
// the final output against the text format 0.0.4 grammar: HELP/TYPE
// ordering, one TYPE per family, contiguous families, charset-valid
// names, quoted+escaped label values, parseable sample values, no
// duplicate series, and cumulative le buckets with _count == +Inf.
// Run with -race: the interleaved WritePrometheus calls are the point.
func TestWritePrometheusStrictConformance(t *testing.T) {
	reg := NewRegistry()
	const writers, iters = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			shard := Label{Key: "shard", Value: strconv.Itoa(w % 3)}
			for i := 0; i < iters; i++ {
				reg.Counter("conf_requests_total", "Requests.", shard).Inc()
				reg.Gauge("conf_inflight", "In flight.").Set(float64(i))
				reg.Histogram("conf_latency_seconds", "Latency.", nil, shard).Observe(float64(i%7) / 100)
				reg.Counter("conf_tricky_total", "Help with \\ backslash\nand newline.",
					Label{Key: "path", Value: `a"b\c` + "\nd"}).Inc()
				if i%50 == 0 {
					var sink strings.Builder
					if err := reg.WritePrometheus(&sink); err != nil {
						t.Errorf("concurrent WritePrometheus: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition must end in a newline")
	}
	checkExposition(t, text)

	// Spot-check the totals actually add up after the concurrent run.
	var reqTotal uint64
	for w := 0; w < 3; w++ {
		reqTotal += reg.Counter("conf_requests_total", "Requests.", Label{Key: "shard", Value: strconv.Itoa(w)}).Value()
	}
	if want := uint64(writers * iters); reqTotal != want {
		t.Fatalf("conf_requests_total sums to %d, want %d", reqTotal, want)
	}
}

// checkExposition strictly validates a text-format 0.0.4 document.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	type famState struct {
		typ     string
		sawType bool
		closed  bool // a later family started; reappearing is an error
	}
	fams := map[string]*famState{}
	var cur string
	seenSeries := map[string]bool{}
	// Histogram bucket accounting per series prefix (name+labels minus le).
	lastBucket := map[string]uint64{}
	infBucket := map[string]uint64{}

	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if !validMetricName(name) {
				t.Fatalf("line %d: HELP for invalid name %q", ln+1, name)
			}
			if strings.Contains(help, "\n") {
				t.Fatalf("line %d: unescaped newline in help", ln+1)
			}
			if f := fams[name]; f != nil {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			fams[name] = &famState{}
			if cur != "" && fams[cur] != nil {
				fams[cur].closed = true
			}
			cur = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown TYPE %q", ln+1, typ)
			}
			f := fams[name]
			if f == nil {
				// TYPE without HELP is legal; HELP, when present, precedes.
				f = &famState{}
				fams[name] = f
				if cur != "" && fams[cur] != nil {
					fams[cur].closed = true
				}
				cur = name
			} else if name != cur {
				t.Fatalf("line %d: TYPE %s interleaves family %s", ln+1, name, cur)
			}
			if f.sawType {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if f.closed {
				t.Fatalf("line %d: family %s reappears after another family", ln+1, name)
			}
			f.typ, f.sawType = typ, true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}

		// Sample line: name[{labels}] value
		name, labels, value := splitSample(t, ln+1, line)
		base := name
		f := fams[cur]
		if f == nil || !f.sawType {
			t.Fatalf("line %d: sample %s before its TYPE", ln+1, name)
		}
		switch f.typ {
		case "histogram":
			switch {
			case strings.HasSuffix(name, "_bucket"):
				base = strings.TrimSuffix(name, "_bucket")
			case strings.HasSuffix(name, "_sum"):
				base = strings.TrimSuffix(name, "_sum")
			case strings.HasSuffix(name, "_count"):
				base = strings.TrimSuffix(name, "_count")
			default:
				t.Fatalf("line %d: histogram sample %s lacks _bucket/_sum/_count suffix", ln+1, name)
			}
		}
		if base != cur {
			t.Fatalf("line %d: sample %s under family %s", ln+1, name, cur)
		}
		if !validMetricName(name) {
			t.Fatalf("line %d: invalid sample name %q", ln+1, name)
		}
		le, labelKey := parseLabels(t, ln+1, labels)
		if seenSeries[name+labelKey] {
			t.Fatalf("line %d: duplicate series %s%s", ln+1, name, labelKey)
		}
		seenSeries[name+labelKey] = true
		v, err := strconv.ParseFloat(value, 64)
		if err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			t.Fatalf("line %d: unparseable value %q: %v", ln+1, value, err)
		}
		if f.typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			if le == "" {
				t.Fatalf("line %d: bucket sample without le label", ln+1)
			}
			series := base + stripLE(labelKey)
			n := uint64(v)
			if n < lastBucket[series] {
				t.Fatalf("line %d: le buckets not cumulative for %s: %d < %d", ln+1, series, n, lastBucket[series])
			}
			lastBucket[series] = n
			if le == "+Inf" {
				infBucket[series] = n
			}
		}
		if f.typ == "histogram" && strings.HasSuffix(name, "_count") {
			series := base + labelKey
			if inf, ok := infBucket[series]; !ok || uint64(v) != inf {
				t.Fatalf("line %d: %s_count = %v but le=+Inf bucket = %d", ln+1, base, v, inf)
			}
		}
	}
	for name, f := range fams {
		if !f.sawType {
			t.Fatalf("family %s has HELP but no TYPE", name)
		}
	}
}

// splitSample breaks a sample line into name, rendered label string
// (may be ""), and value text.
func splitSample(t *testing.T, ln int, line string) (name, labels, value string) {
	t.Helper()
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		t.Fatalf("line %d: no value separator in %q", ln, line)
	}
	series, value := line[:sp], line[sp+1:]
	if i := strings.IndexByte(series, '{'); i >= 0 {
		if !strings.HasSuffix(series, "}") {
			t.Fatalf("line %d: unterminated label set in %q", ln, line)
		}
		return series[:i], series[i:], value
	}
	return series, "", value
}

// parseLabels strictly validates a {k="v",...} label rendering and
// returns the le value (if any) plus a canonical key for duplicate
// detection.
func parseLabels(t *testing.T, ln int, labels string) (le, key string) {
	t.Helper()
	if labels == "" {
		return "", ""
	}
	body := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var parts []string
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			t.Fatalf("line %d: malformed label pair in %q", ln, labels)
		}
		k := body[:eq]
		if !validLabelName(k) {
			t.Fatalf("line %d: invalid label name %q", ln, k)
		}
		// Scan the quoted value honoring backslash escapes.
		i := eq + 2
		for ; i < len(body); i++ {
			if body[i] == '\\' {
				if i+1 >= len(body) {
					t.Fatalf("line %d: dangling escape in %q", ln, labels)
				}
				if c := body[i+1]; c != '\\' && c != '"' && c != 'n' {
					t.Fatalf("line %d: invalid escape \\%c in %q", ln, c, labels)
				}
				i++
				continue
			}
			if body[i] == '"' {
				break
			}
			if body[i] == '\n' {
				t.Fatalf("line %d: raw newline in label value", ln)
			}
		}
		if i >= len(body) {
			t.Fatalf("line %d: unterminated label value in %q", ln, labels)
		}
		v := body[eq+2 : i]
		if k == "le" {
			le = v
		}
		parts = append(parts, fmt.Sprintf("%s=%q", k, v))
		body = body[i+1:]
		if strings.HasPrefix(body, ",") {
			body = body[1:]
			if body == "" {
				t.Fatalf("line %d: trailing comma in %q", ln, labels)
			}
		} else if body != "" {
			t.Fatalf("line %d: junk after label value in %q", ln, labels)
		}
	}
	return le, "{" + strings.Join(parts, ",") + "}"
}

// stripLE removes the le pair from a canonical label key so bucket
// series of one histogram series group together.
func stripLE(labelKey string) string {
	if labelKey == "" {
		return ""
	}
	body := strings.TrimSuffix(strings.TrimPrefix(labelKey, "{"), "}")
	var keep []string
	for _, p := range strings.Split(body, ",") {
		if !strings.HasPrefix(p, `le=`) {
			keep = append(keep, p)
		}
	}
	if len(keep) == 0 {
		return ""
	}
	return "{" + strings.Join(keep, ",") + "}"
}
