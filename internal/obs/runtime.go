package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime sample names polled from runtime/metrics. gcPausesAlt is the
// pre-1.22 spelling kept as a fallback.
const (
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmHeapBytes   = "/memory/classes/heap/objects:bytes"
	rmGCPauses    = "/sched/pauses/total/gc:seconds"
	rmGCPausesAlt = "/gc/pauses:seconds"
	rmGCCPU       = "/cpu/classes/gc/total:cpu-seconds"
	rmTotalCPU    = "/cpu/classes/total:cpu-seconds"
)

// RuntimeCollector polls runtime/metrics into an obs Registry on a
// ticker, exposing the Go runtime's health next to the application
// metrics: goroutine count, live heap bytes, a GC pause histogram, and
// the fraction of CPU spent in GC.
type RuntimeCollector struct {
	goroutines *Gauge
	heapBytes  *Gauge
	gcCPU      *Gauge
	gcPause    *Histogram

	samples   []metrics.Sample
	pauseName string

	// prevPause holds the cumulative runtime pause histogram counts from
	// the previous poll; each Collect observes only the delta, converting
	// the runtime's cumulative histogram into the registry's.
	prevPause []uint64

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// gcPauseBuckets spans 1µs..100ms — typical Go GC stop-the-world pauses
// are well under a millisecond; the tail buckets catch pathology.
var gcPauseBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
}

// NewRuntimeCollector registers the runtime metric families on reg and
// returns a collector ready to Start. The first Collect observes only GC
// pauses that happen after construction (the cumulative baseline is taken
// here), so a long-running process's startup GCs don't land in one poll.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	c := &RuntimeCollector{
		goroutines: reg.Gauge("go_goroutines", "Number of live goroutines."),
		heapBytes:  reg.Gauge("go_heap_bytes", "Bytes of live heap objects."),
		gcCPU:      reg.Gauge("go_gc_cpu_fraction", "Fraction of available CPU consumed by the GC since process start."),
		gcPause:    reg.Histogram("go_gc_pause_seconds", "Distribution of GC stop-the-world pause durations.", gcPauseBuckets),
	}
	c.pauseName = rmGCPauses
	if !sampleSupported(c.pauseName) && sampleSupported(rmGCPausesAlt) {
		c.pauseName = rmGCPausesAlt
	}
	c.samples = []metrics.Sample{
		{Name: rmGoroutines},
		{Name: rmHeapBytes},
		{Name: c.pauseName},
		{Name: rmGCCPU},
		{Name: rmTotalCPU},
	}
	// Baseline the cumulative pause histogram so the first Collect only
	// reports pauses from now on.
	metrics.Read(c.samples)
	if h := histValue(c.samples[2]); h != nil {
		c.prevPause = append([]uint64(nil), h.Counts...)
	}
	return c
}

// sampleSupported reports whether the runtime knows a sample name.
func sampleSupported(name string) bool {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	return s[0].Value.Kind() != metrics.KindBad
}

// histValue extracts a runtime histogram from a sample, or nil.
func histValue(s metrics.Sample) *metrics.Float64Histogram {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return s.Value.Float64Histogram()
}

// Collect performs one poll: reads runtime/metrics and updates the
// registered families. Safe to call directly (tests, one-shot dumps) or
// from the Start ticker.
func (c *RuntimeCollector) Collect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	for _, s := range c.samples {
		switch s.Name {
		case rmGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				c.goroutines.Set(float64(s.Value.Uint64()))
			}
		case rmHeapBytes:
			if s.Value.Kind() == metrics.KindUint64 {
				c.heapBytes.Set(float64(s.Value.Uint64()))
			}
		case c.pauseName:
			c.collectPauses(s)
		}
	}
	// GC CPU fraction = cumulative GC cpu-seconds / cumulative total.
	var gc, total float64
	var ok int
	for _, s := range c.samples {
		if s.Value.Kind() != metrics.KindFloat64 {
			continue
		}
		switch s.Name {
		case rmGCCPU:
			gc, ok = s.Value.Float64(), ok+1
		case rmTotalCPU:
			total, ok = s.Value.Float64(), ok+1
		}
	}
	if ok == 2 && total > 0 {
		c.gcCPU.Set(gc / total)
	}
}

// collectPauses folds the delta of the runtime's cumulative pause
// histogram into the registry histogram, observing each new pause at its
// bucket's upper bound (the runtime only exposes counts, not values).
func (c *RuntimeCollector) collectPauses(s metrics.Sample) {
	h := histValue(s)
	if h == nil {
		return
	}
	if c.prevPause == nil || len(c.prevPause) != len(h.Counts) {
		c.prevPause = make([]uint64, len(h.Counts))
	}
	for i, n := range h.Counts {
		d := n - c.prevPause[i]
		c.prevPause[i] = n
		if d == 0 {
			continue
		}
		// Bucket i covers [Buckets[i], Buckets[i+1]); observe at the
		// upper edge so we never under-report a pause.
		v := h.Buckets[i+1]
		if v > 1e9 { // +Inf edge: fall back to the lower bound
			v = h.Buckets[i]
		}
		for j := uint64(0); j < d; j++ {
			c.gcPause.Observe(v)
		}
	}
}

// Start launches a goroutine polling Collect every interval until Stop.
// Calling Start twice without Stop is a no-op.
func (c *RuntimeCollector) Start(interval time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Collect()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the polling goroutine and waits for it to exit. Safe to call
// without a prior Start.
func (c *RuntimeCollector) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
