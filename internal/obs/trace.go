package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request's identity and timing record: a process-unique
// request ID plus named spans (the three search phases, handler sections,
// anything worth attributing time to), each optionally annotated with
// typed attributes and nested under a parent span so a sharded search
// renders as a tree. It travels through the handler stack via
// context.Context and is cheap enough to allocate per request. All
// methods are safe for concurrent use and safe on a nil receiver, so
// instrumented code never has to check whether tracing is wired.
type Trace struct {
	ID    string // request ID, echoed to clients in X-Request-ID
	start time.Time

	mu      sync.Mutex
	spans   []Span
	attrs   []Attr // trace-level attributes (the wide-event payload)
	nextID  int    // last span ID handed out
	errMsg  string // non-empty marks the trace errored
	partial bool   // a degraded (partial) answer was served
}

// Span is one named timed section of a request.
type Span struct {
	// ID is the span's identity within its trace (1-based; 0 is never a
	// span ID, it denotes "no parent").
	ID int
	// Parent is the ID of the enclosing span, or 0 for a root span.
	Parent int
	// Name is the span label, e.g. "filter" or "shard".
	Name string
	// Start is the span's offset from trace start.
	Start time.Duration
	// Dur is the elapsed time inside the span.
	Dur time.Duration
	// Attrs are the span's typed annotations (candidate counts, pruning
	// ratios, shard ids, retry outcomes, ...).
	Attrs []Attr
}

// --- typed attributes ---------------------------------------------------

// attrKind discriminates an Attr's payload.
type attrKind uint8

const (
	attrString attrKind = iota
	attrInt
	attrFloat
	attrBool
)

// Attr is one typed key/value annotation on a span or trace. Construct
// with Str, Int, Int64, Float, or Bool.
type Attr struct {
	// Key is the attribute name, e.g. "candidates_out".
	Key string

	kind attrKind
	s    string
	i    int64
	f    float64
}

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, kind: attrString, s: v} }

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, kind: attrInt, i: int64(v)} }

// Int64 builds an integer attribute from an int64.
func Int64(key string, v int64) Attr { return Attr{Key: key, kind: attrInt, i: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: attrFloat, f: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: attrBool}
	if v {
		a.i = 1
	}
	return a
}

// Value returns the attribute's payload as its natural Go type (string,
// int64, float64, or bool) — the form it takes in JSON.
func (a Attr) Value() any {
	switch a.kind {
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	case attrBool:
		return a.i != 0
	default:
		return a.s
	}
}

// String renders the attribute as "key=value".
func (a Attr) String() string {
	switch a.kind {
	case attrInt:
		return a.Key + "=" + strconv.FormatInt(a.i, 10)
	case attrFloat:
		return a.Key + "=" + strconv.FormatFloat(a.f, 'g', 4, 64)
	case attrBool:
		if a.i != 0 {
			return a.Key + "=true"
		}
		return a.Key + "=false"
	default:
		return a.Key + "=" + a.s
	}
}

// slogAttr renders the attribute for structured logging.
func (a Attr) slogAttr() slog.Attr {
	switch a.kind {
	case attrInt:
		return slog.Int64(a.Key, a.i)
	case attrFloat:
		return slog.Float64(a.Key, a.f)
	case attrBool:
		return slog.Bool(a.Key, a.i != 0)
	default:
		return slog.String(a.Key, a.s)
	}
}

// attrMap converts an attribute list to the JSON object form.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// --- identity -----------------------------------------------------------

// traceIDs seeds request-ID generation: a random per-process prefix plus
// a monotonic counter. IDs are unique within and (with high probability)
// across processes without paying for crypto/rand on every request.
var (
	tracePrefix = func() string {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], rand.Uint32())
		return hex.EncodeToString(b[:])
	}()
	traceSeq atomic.Uint64
)

// NewTrace starts a trace with a fresh request ID.
func NewTrace() *Trace {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], traceSeq.Add(1))
	return &Trace{ID: tracePrefix + "-" + hex.EncodeToString(b[2:]), start: time.Now()}
}

// NewTraceWithID starts a trace under a caller-supplied request ID — the
// server uses it to honor a valid client X-Request-ID so traces correlate
// across services. The caller is responsible for validation (see
// ValidRequestID).
func NewTraceWithID(id string) *Trace {
	return &Trace{ID: id, start: time.Now()}
}

// maxRequestIDLen bounds a client-supplied X-Request-ID.
const maxRequestIDLen = 64

// ValidRequestID reports whether a client-supplied request ID is
// acceptable: 1–64 characters from [A-Za-z0-9._-]. Anything else is
// rejected and a fresh ID generated, so a hostile header can never smuggle
// log-corrupting bytes into the request ID.
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Age returns the time since the trace started.
func (t *Trace) Age() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// --- recording ----------------------------------------------------------

// newSpanID hands out the next span ID under t.mu.
func (t *Trace) newSpanIDLocked() int {
	t.nextID++
	return t.nextID
}

// StartSpan opens a named root span and returns the function that closes
// it.
//
//	done := tr.StartSpan("refine")
//	defer done()
//
// For nested spans threaded through a context, use the package-level
// StartSpan.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	s0 := time.Since(t.start)
	return func() {
		d := time.Since(t.start) - s0
		t.mu.Lock()
		t.spans = append(t.spans, Span{ID: t.newSpanIDLocked(), Name: name, Start: s0, Dur: d})
		t.mu.Unlock()
	}
}

// AddSpan records an already-measured root span (e.g. a phase duration
// lifted from core.SearchStats) ending now.
func (t *Trace) AddSpan(name string, d time.Duration) {
	t.RecordSpan(0, name, d)
}

// RecordSpan records an already-measured span of duration d ending now,
// as a child of parent (0 = root), with optional attributes. It is the
// post-hoc form instrumented code uses when the duration was measured
// anyway (phase timings): one lock + append when a trace is present,
// nothing otherwise.
func (t *Trace) RecordSpan(parent int, name string, d time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	end := time.Since(t.start)
	start := end - d
	if start < 0 {
		start = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{ID: t.newSpanIDLocked(), Parent: parent, Name: name, Start: start, Dur: d, Attrs: attrs})
	t.mu.Unlock()
}

// SetAttrs appends trace-level attributes — the canonical wide-event
// payload (route, thresholds, candidate counts, cache tier, ...).
func (t *Trace) SetAttrs(attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.attrs = append(t.attrs, attrs...)
	t.mu.Unlock()
}

// Attrs returns a snapshot of the trace-level attributes.
func (t *Trace) Attrs() []Attr {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Attr(nil), t.attrs...)
}

// MarkError marks the trace errored. The recorder retains every errored
// trace regardless of latency.
func (t *Trace) MarkError(msg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.errMsg == "" {
		t.errMsg = msg
	}
	t.mu.Unlock()
}

// MarkPartial marks the trace as having served a degraded (partial)
// answer. The recorder retains partial traces like errors.
func (t *Trace) MarkPartial() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.partial = true
	t.mu.Unlock()
}

// Err returns the error message set by MarkError, or "".
func (t *Trace) Err() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.errMsg
}

// Spans returns a snapshot of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// SlogAttrs renders the trace for structured logging: the request ID plus
// one duration attribute per span (span durations in milliseconds).
func (t *Trace) SlogAttrs() []slog.Attr {
	if t == nil {
		return nil
	}
	attrs := []slog.Attr{slog.String("requestID", t.ID)}
	for _, s := range t.Spans() {
		attrs = append(attrs, slog.Float64("span."+s.Name+".ms", float64(s.Dur)/float64(time.Millisecond)))
	}
	return attrs
}

// WideAttrs renders the canonical wide-event payload for the per-request
// log line: every trace-level attribute, the partial/error markers, and
// one duration attribute per span. The request ID is omitted — the
// middleware logs it alongside.
func (t *Trace) WideAttrs() []slog.Attr {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	attrs := append([]Attr(nil), t.attrs...)
	spans := append([]Span(nil), t.spans...)
	errMsg, partial := t.errMsg, t.partial
	t.mu.Unlock()
	out := make([]slog.Attr, 0, len(attrs)+len(spans)+2)
	for _, a := range attrs {
		out = append(out, a.slogAttr())
	}
	if partial {
		out = append(out, slog.Bool("partial", true))
	}
	if errMsg != "" {
		out = append(out, slog.String("error", errMsg))
	}
	for _, s := range spans {
		out = append(out, slog.Float64("span."+s.Name+".ms", float64(s.Dur)/float64(time.Millisecond)))
	}
	return out
}

// --- snapshots ----------------------------------------------------------

// SpanSnapshot is the immutable, JSON-ready form of one recorded span.
type SpanSnapshot struct {
	// ID is the span's identity within the trace.
	ID int `json:"id"`
	// Parent is the enclosing span's ID (0 = root), omitted at the root.
	Parent int `json:"parent,omitempty"`
	// Name is the span label.
	Name string `json:"name"`
	// StartNS is the span's offset from trace start, in nanoseconds.
	StartNS int64 `json:"startNs"`
	// DurNS is the span's duration in nanoseconds.
	DurNS int64 `json:"durNs"`
	// Attrs are the span's annotations keyed by attribute name.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceSnapshot is the immutable record of a completed trace, as retained
// by the Recorder and served by /debug/tracez.
type TraceSnapshot struct {
	// ID is the request ID.
	ID string `json:"id"`
	// Start is the trace's wall-clock start time.
	Start time.Time `json:"start"`
	// DurNS is the trace's end-to-end duration in nanoseconds.
	DurNS int64 `json:"durNs"`
	// Status is "ok", "partial", or "error".
	Status string `json:"status"`
	// Err is the MarkError message for errored traces.
	Err string `json:"error,omitempty"`
	// Attrs are the trace-level (wide-event) attributes.
	Attrs map[string]any `json:"attrs,omitempty"`
	// Spans are the recorded spans in recording order.
	Spans []SpanSnapshot `json:"spans,omitempty"`
}

// Dur returns the snapshot's duration.
func (s *TraceSnapshot) Dur() time.Duration { return time.Duration(s.DurNS) }

// Snapshot freezes the trace's current state, ending now. Status is
// derived from the trace's markers: "error" when MarkError was called,
// else "partial" when MarkPartial was, else "ok".
func (t *Trace) Snapshot() *TraceSnapshot {
	if t == nil {
		return nil
	}
	dur := time.Since(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := &TraceSnapshot{
		ID:     t.ID,
		Start:  t.start,
		DurNS:  int64(dur),
		Status: "ok",
		Err:    t.errMsg,
		Attrs:  attrMap(t.attrs),
	}
	if t.partial {
		snap.Status = "partial"
	}
	if t.errMsg != "" {
		snap.Status = "error"
	}
	for _, s := range t.spans {
		snap.Spans = append(snap.Spans, SpanSnapshot{
			ID: s.ID, Parent: s.Parent, Name: s.Name,
			StartNS: int64(s.Start), DurNS: int64(s.Dur), Attrs: attrMap(s.Attrs),
		})
	}
	return snap
}

// WriteTree renders the snapshot as an indented human-readable span tree:
// one line per span with its offset, duration, and attributes, children
// nested under parents and ordered by start offset.
func (s *TraceSnapshot) WriteTree(w io.Writer) {
	fmt.Fprintf(w, "trace %s  %s  status=%s", s.ID, fmtDur(time.Duration(s.DurNS)), s.Status)
	if s.Err != "" {
		fmt.Fprintf(w, "  error=%q", s.Err)
	}
	writeAttrMap(w, s.Attrs)
	fmt.Fprintln(w)
	children := make(map[int][]SpanSnapshot)
	for _, sp := range s.Spans {
		parent := sp.Parent
		if _, ok := spanByID(s.Spans, parent); parent != 0 && !ok {
			parent = 0 // orphan (parent dropped); render at the root
		}
		children[parent] = append(children[parent], sp)
	}
	for id := range children {
		c := children[id]
		sort.Slice(c, func(i, j int) bool { return c[i].StartNS < c[j].StartNS })
	}
	var walk func(parent, depth int)
	walk = func(parent, depth int) {
		for _, sp := range children[parent] {
			fmt.Fprintf(w, "%*s%s  @%s +%s", 2*depth+2, "", sp.Name,
				fmtDur(time.Duration(sp.StartNS)), fmtDur(time.Duration(sp.DurNS)))
			writeAttrMap(w, sp.Attrs)
			fmt.Fprintln(w)
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
}

// spanByID finds a span snapshot by ID.
func spanByID(spans []SpanSnapshot, id int) (SpanSnapshot, bool) {
	for _, sp := range spans {
		if sp.ID == id {
			return sp, true
		}
	}
	return SpanSnapshot{}, false
}

// writeAttrMap renders attributes as "  k=v" pairs in key order.
func writeAttrMap(w io.Writer, attrs map[string]any) {
	if len(attrs) == 0 {
		return
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %s=%v", k, attrs[k])
	}
}

// fmtDur renders a duration with µs precision below 1ms and ms precision
// above, keeping tree lines compact.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// --- context ------------------------------------------------------------

// traceKey is the context key Trace travels under; spanKey carries the
// active span's ID for parent/child nesting.
type (
	traceKey struct{}
	spanKey  struct{}
)

// WithTrace returns a context carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. The nil result is
// safe to use directly: every Trace method no-ops on nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// SpanFromContext returns the ID of the span active in ctx, or 0 — the
// parent under which instrumented code should record its spans.
func SpanFromContext(ctx context.Context) int {
	id, _ := ctx.Value(spanKey{}).(int)
	return id
}

// StartSpan opens a span as a child of whatever span is active in ctx and
// returns a derived context carrying the new span (so further spans nest
// under it) plus the closer that records it with optional attributes.
// Without a trace in ctx both returns are no-ops and ctx comes back
// unchanged, so the uninstrumented path pays one context lookup and
// allocates nothing.
func StartSpan(ctx context.Context, name string) (context.Context, func(attrs ...Attr)) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, noopEnd
	}
	parent := SpanFromContext(ctx)
	t.mu.Lock()
	id := t.newSpanIDLocked()
	t.mu.Unlock()
	s0 := time.Since(t.start)
	return context.WithValue(ctx, spanKey{}, id), func(attrs ...Attr) {
		d := time.Since(t.start) - s0
		t.mu.Lock()
		t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: s0, Dur: d, Attrs: attrs})
		t.mu.Unlock()
	}
}

// noopEnd is the shared closer for unfollowed StartSpan calls, so the
// traceless path allocates no closure.
func noopEnd(...Attr) {}
