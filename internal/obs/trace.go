package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request's identity and timing record: a process-unique
// request ID plus named spans (the three search phases, handler sections,
// anything worth attributing time to). It travels through the handler
// stack via context.Context and is cheap enough to allocate per request.
// All methods are safe for concurrent use and safe on a nil receiver, so
// instrumented code never has to check whether tracing is wired.
type Trace struct {
	ID    string // request ID, echoed to clients in X-Request-ID
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// Span is one named timed section of a request.
type Span struct {
	Name  string        // span label, e.g. "phase2"
	Start time.Duration // offset from trace start
	Dur   time.Duration // elapsed time inside the span
}

// traceIDs seeds request-ID generation: a random per-process prefix plus
// a monotonic counter. IDs are unique within and (with high probability)
// across processes without paying for crypto/rand on every request.
var (
	tracePrefix = func() string {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], rand.Uint32())
		return hex.EncodeToString(b[:])
	}()
	traceSeq atomic.Uint64
)

// NewTrace starts a trace with a fresh request ID.
func NewTrace() *Trace {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], traceSeq.Add(1))
	return &Trace{ID: tracePrefix + "-" + hex.EncodeToString(b[2:]), start: time.Now()}
}

// Age returns the time since the trace started.
func (t *Trace) Age() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// StartSpan opens a named span and returns the function that closes it.
//
//	done := tr.StartSpan("refine")
//	defer done()
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	s0 := time.Since(t.start)
	return func() {
		d := time.Since(t.start) - s0
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: s0, Dur: d})
		t.mu.Unlock()
	}
}

// AddSpan records an already-measured span (e.g. a phase duration lifted
// from core.SearchStats) ending now.
func (t *Trace) AddSpan(name string, d time.Duration) {
	if t == nil {
		return
	}
	end := time.Since(t.start)
	start := end - d
	if start < 0 {
		start = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Dur: d})
	t.mu.Unlock()
}

// Spans returns a snapshot of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// SlogAttrs renders the trace for structured logging: the request ID plus
// one duration attribute per span (span durations in milliseconds).
func (t *Trace) SlogAttrs() []slog.Attr {
	if t == nil {
		return nil
	}
	attrs := []slog.Attr{slog.String("requestID", t.ID)}
	for _, s := range t.Spans() {
		attrs = append(attrs, slog.Float64("span."+s.Name+".ms", float64(s.Dur)/float64(time.Millisecond)))
	}
	return attrs
}

// traceKey is the context key Trace travels under.
type traceKey struct{}

// WithTrace returns a context carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. The nil result is
// safe to use directly: every Trace method no-ops on nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
