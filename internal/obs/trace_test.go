package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"log/slog"
)

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := NewTrace().ID
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate request id %q", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	done := tr.StartSpan("work")
	time.Sleep(time.Millisecond)
	done()
	tr.AddSpan("lifted", 5*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "work" || spans[0].Dur <= 0 {
		t.Fatalf("bad measured span %+v", spans[0])
	}
	if spans[1].Name != "lifted" || spans[1].Dur != 5*time.Millisecond || spans[1].Start < 0 {
		t.Fatalf("bad lifted span %+v", spans[1])
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.AddSpan("y", time.Second)
	if tr.Spans() != nil || tr.Age() != 0 || tr.SlogAttrs() != nil {
		t.Fatal("nil trace leaked state")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context produced a trace")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not round-trip through context")
	}
}

// TestMiddleware exercises the full HTTP wrapper: request ID header,
// trace in context, metrics, and the structured log line.
func TestMiddleware(t *testing.T) {
	reg := NewRegistry()
	var logBuf strings.Builder
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	var ctxID string
	h := Middleware(reg, logger, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctxID = FromContext(r.Context()).ID
		w.WriteHeader(http.StatusTeapot)
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/teapot", nil))

	hdr := rec.Header().Get("X-Request-ID")
	if hdr == "" || hdr != ctxID {
		t.Fatalf("X-Request-ID %q != context trace id %q", hdr, ctxID)
	}
	if got := reg.Counter("mdseq_http_requests_total", "",
		Label{"method", "GET"}, Label{"code", "418"}).Value(); got != 1 {
		t.Fatalf("requests_total{GET,418} = %d, want 1", got)
	}
	log := logBuf.String()
	for _, want := range []string{`"msg":"request"`, `"requestID":"` + hdr, `"status":418`, `"path":"/teapot"`} {
		if !strings.Contains(log, want) {
			t.Fatalf("log line missing %q:\n%s", want, log)
		}
	}
}
