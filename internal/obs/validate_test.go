package obs

import (
	"strings"
	"testing"
)

// mustPanic runs f and fails the test unless it panics with a message
// containing want.
func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want message containing %q", r, want)
		}
	}()
	f()
}

func TestInvalidMetricNamePanics(t *testing.T) {
	for _, bad := range []string{"", "mdseq-search", "0count", "mdseq.search", "metré"} {
		name := bad
		mustPanic(t, "invalid metric name", func() {
			NewRegistry().Counter(name, "help")
		})
	}
}

func TestValidMetricNamesAccepted(t *testing.T) {
	r := NewRegistry()
	for _, good := range []string{"mdseq_search_total", "go_goroutines", "ns:sub_total", "_hidden", "A9"} {
		r.Counter(good, "help").Inc()
	}
}

func TestInvalidLabelNamePanics(t *testing.T) {
	for _, bad := range []string{"", "shard-id", "0shard", "shard id", "lé"} {
		key := bad
		mustPanic(t, "invalid label name", func() {
			NewRegistry().Counter("ok_total", "help", Label{Key: key, Value: "v"})
		})
	}
}

func TestLabelValuesNeedNoValidation(t *testing.T) {
	// Values are quoted and escaped, so arbitrary bytes are fine.
	r := NewRegistry()
	r.Counter("ok_total", "help", Label{Key: "path", Value: "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\nd"`) {
		t.Fatalf("label value not escaped:\n%s", b.String())
	}
}

func TestHistogramBucketMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat_seconds", "help", []float64{0.1, 1})
	mustPanic(t, "registered with buckets", func() {
		r.Histogram("lat_seconds", "help", []float64{0.1, 1, 10})
	})
	// Same family, different label set, divergent bounds: still a panic —
	// all series of a family share one ladder.
	mustPanic(t, "registered with buckets", func() {
		r.Histogram("lat_seconds", "help", []float64{0.2, 2}, Label{Key: "shard", Value: "1"})
	})
}

func TestHistogramSameBucketsReRegisters(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("lat_seconds", "help", []float64{0.1, 1})
	b := r.Histogram("lat_seconds", "help", []float64{1, 0.1}) // same set, unsorted: bounds are canonicalized
	if a != b {
		t.Fatal("same-bounds re-registration must return the same series")
	}
	// nil buckets mean LatencyBuckets on every call, so nil/nil agrees.
	c := r.Histogram("other_seconds", "help", nil)
	if d := r.Histogram("other_seconds", "help", nil); c != d {
		t.Fatal("nil-bucket re-registration must return the same series")
	}
	// ...and nil vs an explicit copy of LatencyBuckets also agrees.
	explicit := append([]float64(nil), LatencyBuckets...)
	if e := r.Histogram("other_seconds", "help", explicit); c != e {
		t.Fatal("explicit LatencyBuckets must match the nil default")
	}
}

func TestFamiliesSorted(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z_gauge", "last")
	r.Counter("a_total", "first")
	r.Histogram("m_seconds", "middle", nil)
	fams := r.Families()
	if len(fams) != 3 {
		t.Fatalf("Families() = %d, want 3", len(fams))
	}
	want := []FamilyInfo{
		{Name: "a_total", Type: "counter", Help: "first"},
		{Name: "m_seconds", Type: "histogram", Help: "middle"},
		{Name: "z_gauge", Type: "gauge", Help: "last"},
	}
	for i, f := range fams {
		if f != want[i] {
			t.Fatalf("Families()[%d] = %+v, want %+v", i, f, want[i])
		}
	}
}
