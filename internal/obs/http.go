package obs

import (
	"log/slog"
	"net/http"
	"strconv"
)

// MetricsHandler serves reg in Prometheus text exposition format — mount
// it at GET /metrics.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Middleware instruments an HTTP handler: every request gets a Trace (and
// an X-Request-ID response header) in its context, a per-request
// structured log line (request ID, method, path, status, bytes,
// duration), and, when reg is non-nil, http request counters and a
// latency histogram labeled by method and status code. logger may be nil
// to disable logging; reg may be nil to disable metrics.
func Middleware(reg *Registry, logger *slog.Logger, next http.Handler) http.Handler {
	var inflight *Gauge
	if reg != nil {
		inflight = reg.Gauge("mdseq_http_inflight_requests",
			"HTTP requests currently being served.")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := NewTrace()
		w.Header().Set("X-Request-ID", tr.ID)
		sw := &statusWriter{ResponseWriter: w}
		if inflight != nil {
			inflight.Add(1)
			defer inflight.Add(-1)
		}
		next.ServeHTTP(sw, r.WithContext(WithTrace(r.Context(), tr)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := tr.Age()
		if reg != nil {
			labels := []Label{
				{Key: "method", Value: r.Method},
				{Key: "code", Value: strconv.Itoa(sw.status)},
			}
			reg.Counter("mdseq_http_requests_total",
				"HTTP requests served, by method and status code.", labels...).Inc()
			reg.Histogram("mdseq_http_request_seconds",
				"HTTP request latency in seconds, by method and status code.", nil, labels...).
				ObserveDuration(dur)
		}
		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("requestID", tr.ID),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int("bytes", sw.bytes),
				slog.Duration("duration", dur),
			)
		}
	})
}
