package obs

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// MetricsHandler serves reg in Prometheus text exposition format — mount
// it at GET /metrics.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Middleware instruments an HTTP handler: every request gets a Trace (and
// an X-Request-ID response header) in its context, a canonical wide-event
// structured log line (request ID, method, path, status, bytes, duration,
// plus every trace attribute and span timing the handlers recorded), and,
// when reg is non-nil, http request counters and a latency histogram
// labeled by method and status code. A client-supplied X-Request-ID is
// honored when it passes ValidRequestID, so traces correlate across
// services; invalid or absent IDs fall back to a generated one. rec, when
// non-nil, receives every request into the flight recorder (in-flight
// table + retained completions). logger may be nil to disable logging;
// reg may be nil to disable metrics; rec may be nil to disable recording.
func Middleware(reg *Registry, logger *slog.Logger, rec *Recorder, next http.Handler) http.Handler {
	var inflight *Gauge
	if reg != nil {
		inflight = reg.Gauge("mdseq_http_inflight_requests",
			"HTTP requests currently being served.")
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var tr *Trace
		if id := r.Header.Get("X-Request-ID"); ValidRequestID(id) {
			tr = NewTraceWithID(id)
		} else {
			tr = NewTrace()
		}
		w.Header().Set("X-Request-ID", tr.ID)
		sw := &statusWriter{ResponseWriter: w}
		if inflight != nil {
			inflight.Add(1)
			defer inflight.Add(-1)
		}
		tr.SetAttrs(Str("method", r.Method), Str("path", r.URL.Path))
		rec.Start(tr)
		next.ServeHTTP(sw, r.WithContext(WithTrace(r.Context(), tr)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if sw.status >= 400 && tr.Err() == "" {
			tr.MarkError(http.StatusText(sw.status))
		}
		dur := tr.Age()
		rec.End(tr)
		if reg != nil {
			labels := []Label{
				{Key: "method", Value: r.Method},
				{Key: "code", Value: strconv.Itoa(sw.status)},
			}
			reg.Counter("mdseq_http_requests_total",
				"HTTP requests served, by method and status code.", labels...).Inc()
			reg.Histogram("mdseq_http_request_seconds",
				"HTTP request latency in seconds, by method and status code.", nil, labels...).
				ObserveDuration(dur)
		}
		if logger != nil {
			// One canonical wide-event line per request: identity and
			// HTTP outcome up front, then every trace attribute and span
			// timing the handlers recorded.
			attrs := []slog.Attr{
				slog.String("requestID", tr.ID),
				slog.Int("status", sw.status),
				slog.Int("bytes", sw.bytes),
				slog.Duration("duration", dur),
			}
			attrs = append(attrs, tr.WideAttrs()...)
			logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	})
}

// TracezHandler serves the recorder's retained traces — mount it at
// GET /debug/tracez. The default response is JSON (RecorderDump);
// ?format=text renders each retained trace as an indented span tree.
func TracezHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dump := rec.Dump()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeDumpSection(w, "recent", dump.Recent)
			writeDumpSection(w, "slowest", dump.Slowest)
			writeDumpSection(w, "errored", dump.Errored)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(dump)
	})
}

// writeDumpSection renders one /debug/tracez text section.
func writeDumpSection(w http.ResponseWriter, title string, traces []*TraceSnapshot) {
	w.Write([]byte("== " + title + " (" + strconv.Itoa(len(traces)) + ") ==\n"))
	for _, t := range traces {
		t.WriteTree(w)
	}
	w.Write([]byte("\n"))
}

// requestzEntry is one /debug/requestz row: an ActiveRequest with the age
// rendered human-readably alongside the raw nanoseconds.
type requestzEntry struct {
	ActiveRequest
	// Age is AgeNS rendered as a Go duration string.
	Age string `json:"age"`
}

// RequestzHandler serves the recorder's in-flight request table — mount
// it at GET /debug/requestz. Rows are ordered oldest first, so a hung
// request is at the top.
func RequestzHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		active := rec.Active()
		rows := make([]requestzEntry, len(active))
		for i, a := range active {
			rows[i] = requestzEntry{ActiveRequest: a, Age: time.Duration(a.AgeNS).String()}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			// Active is the in-flight table, oldest first.
			Active []requestzEntry `json:"active"`
		}{rows})
	})
}
