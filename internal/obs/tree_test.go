package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)

	sctx, endScatter := StartSpan(ctx, "scatter")
	_, endShard0 := StartSpan(sctx, "shard")
	endShard0(Int("shard", 0), Bool("ok", true))
	_, endShard1 := StartSpan(sctx, "shard")
	endShard1(Int("shard", 1), Bool("ok", false))
	// Post-hoc child recording against the active span in sctx.
	tr.RecordSpan(SpanFromContext(sctx), "merge", time.Microsecond, Int("rows", 7))
	endScatter(Int("shards", 2))

	snap := tr.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(snap.Spans))
	}
	var scatter *SpanSnapshot
	for i := range snap.Spans {
		if snap.Spans[i].Name == "scatter" {
			scatter = &snap.Spans[i]
		}
	}
	if scatter == nil {
		t.Fatal("scatter span missing")
	}
	if scatter.Parent != 0 {
		t.Fatalf("scatter.Parent = %d, want root", scatter.Parent)
	}
	var children int
	for _, sp := range snap.Spans {
		if sp.Parent == scatter.ID {
			children++
			if sp.Name != "shard" && sp.Name != "merge" {
				t.Fatalf("unexpected child %q of scatter", sp.Name)
			}
		}
	}
	if children != 3 {
		t.Fatalf("scatter has %d children, want 3 (2 shards + merge)", children)
	}
}

func TestStartSpanWithoutTraceIsFree(t *testing.T) {
	ctx := context.Background()
	ctx2, end := StartSpan(ctx, "phantom")
	if ctx2 != ctx {
		t.Fatal("traceless StartSpan must return the context unchanged")
	}
	end(Int("ignored", 1)) // must not panic
	if n := testing.AllocsPerRun(100, func() {
		_, end := StartSpan(ctx, "phantom")
		end()
	}); n != 0 {
		t.Fatalf("traceless StartSpan allocates %v times per call, want 0", n)
	}
}

func TestSnapshotStatusDerivation(t *testing.T) {
	ok := NewTrace()
	if s := ok.Snapshot(); s.Status != "ok" {
		t.Fatalf("fresh trace status %q, want ok", s.Status)
	}
	part := NewTrace()
	part.MarkPartial()
	if s := part.Snapshot(); s.Status != "partial" {
		t.Fatalf("partial trace status %q, want partial", s.Status)
	}
	both := NewTrace()
	both.MarkPartial()
	both.MarkError("first")
	both.MarkError("second") // first MarkError wins
	s := both.Snapshot()
	if s.Status != "error" || s.Err != "first" {
		t.Fatalf("status %q err %q, want error/first", s.Status, s.Err)
	}
}

func TestWriteTreeRendersNestedSpans(t *testing.T) {
	tr := NewTraceWithID("req-tree-1")
	ctx := WithTrace(context.Background(), tr)
	sctx, endScatter := StartSpan(ctx, "scatter")
	_, endShard := StartSpan(sctx, "shard")
	endShard(Int("shard", 3))
	endScatter(Int("shards", 4))
	tr.SetAttrs(Str("path", "/search"))
	tr.MarkPartial()

	var b strings.Builder
	tr.Snapshot().WriteTree(&b)
	out := b.String()

	if !strings.Contains(out, "trace req-tree-1") {
		t.Fatalf("header missing trace ID:\n%s", out)
	}
	if !strings.Contains(out, "status=partial") {
		t.Fatalf("header missing status:\n%s", out)
	}
	if !strings.Contains(out, "path=/search") {
		t.Fatalf("header missing trace attrs:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var scatterIndent, shardIndent = -1, -1
	for _, l := range lines {
		trimmed := strings.TrimLeft(l, " ")
		switch {
		case strings.HasPrefix(trimmed, "scatter "):
			scatterIndent = len(l) - len(trimmed)
			if !strings.Contains(l, "shards=4") {
				t.Fatalf("scatter line lost attrs: %q", l)
			}
		case strings.HasPrefix(trimmed, "shard "):
			shardIndent = len(l) - len(trimmed)
			if !strings.Contains(l, "shard=3") {
				t.Fatalf("shard line lost attrs: %q", l)
			}
		}
	}
	if scatterIndent < 0 || shardIndent < 0 {
		t.Fatalf("span lines missing:\n%s", out)
	}
	if shardIndent <= scatterIndent {
		t.Fatalf("shard (indent %d) not nested under scatter (indent %d):\n%s", shardIndent, scatterIndent, out)
	}
}

func TestWriteTreeReRootsOrphans(t *testing.T) {
	tr := NewTrace()
	tr.RecordSpan(99, "orphan", time.Millisecond) // parent never recorded
	var b strings.Builder
	tr.Snapshot().WriteTree(&b)
	if !strings.Contains(b.String(), "orphan") {
		t.Fatalf("orphan span dropped from tree:\n%s", b.String())
	}
}

func TestValidRequestIDTable(t *testing.T) {
	valid := []string{"a", "req-1", "A.b_c-9", strings.Repeat("x", 64)}
	for _, id := range valid {
		if !ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = false, want true", id)
		}
	}
	invalid := []string{"", strings.Repeat("x", 65), "has space", "new\nline", "semi;colon", "é", `quote"id`}
	for _, id := range invalid {
		if ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = true, want false", id)
		}
	}
}
