// Package obs is the observability substrate for mdseq: a stdlib-only
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms with a Prometheus text-exposition encoder), lightweight
// per-request tracing (request IDs and attributed, nestable span timings
// propagated via context.Context), a flight recorder (Recorder) that
// retains the slowest and errored traces per latency bucket and serves
// them at /debug/tracez alongside an in-flight table at /debug/requestz,
// and a runtime collector polling runtime/metrics (goroutines, heap, GC
// pauses, GC CPU) into the registry.
//
// The paper's value proposition is pruning effectiveness — how few
// sequences survive the Dmbr and Dnorm filters (Lemmas 1–3) and reach the
// exact refinement — so the layer exists to make filter selectivity and
// phase latency continuously visible, not just per call via
// core.SearchStats. Every instrument is a fixed-size atomic cell: a
// counter increment is one atomic add, a histogram observation is two
// adds plus a CAS loop on the sum, and registration is done once at
// wiring time so the hot path never touches a map or a lock. That keeps
// the overhead of instrumenting Search well under the noise floor of the
// search itself (see BenchmarkSearchInstrumented in the repo root).
//
// Typical wiring:
//
//	reg := obs.NewRegistry()
//	db.SetMetrics(reg)                       // core or sharded database
//	mux.Handle("GET /metrics", obs.MetricsHandler(reg))
//
// Metric naming follows Prometheus conventions: counters end in _total,
// latency histograms in _seconds, and every mdseq metric carries the
// mdseq_ prefix. DESIGN.md's "Observability" section maps each exported
// metric to the paper concept it measures.
package obs
