package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeCollectorCollect(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	runtime.GC() // guarantee at least one pause since the baseline
	c.Collect()

	if v := c.goroutines.Value(); v < 1 {
		t.Fatalf("go_goroutines = %v, want >= 1", v)
	}
	if v := c.heapBytes.Value(); v <= 0 {
		t.Fatalf("go_heap_bytes = %v, want > 0", v)
	}
	if n := c.gcPause.Count(); n == 0 {
		t.Fatal("go_gc_pause_seconds recorded no pauses despite a forced GC")
	}
	frac := c.gcCPU.Value()
	if frac < 0 || frac > 1 {
		t.Fatalf("go_gc_cpu_fraction = %v, want within [0, 1]", frac)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"go_goroutines", "go_heap_bytes", "go_gc_cpu_fraction", "go_gc_pause_seconds"} {
		if !strings.Contains(b.String(), "# TYPE "+fam+" ") {
			t.Fatalf("exposition missing family %s", fam)
		}
	}
}

func TestRuntimeCollectorPauseDelta(t *testing.T) {
	c := NewRuntimeCollector(NewRegistry())
	runtime.GC()
	c.Collect()
	n1 := c.gcPause.Count()
	// A second Collect with no further GC must not re-observe the
	// cumulative history (the delta conversion is the point).
	c.Collect()
	n2 := c.gcPause.Count()
	if n2 < n1 || n2-n1 > 4 {
		t.Fatalf("pause count went %d -> %d across an idle Collect; cumulative counts leaked", n1, n2)
	}
	runtime.GC()
	c.Collect()
	if n3 := c.gcPause.Count(); n3 <= n2 {
		t.Fatalf("pause count stayed at %d after another forced GC", n3)
	}
}

func TestRuntimeCollectorStartStop(t *testing.T) {
	c := NewRuntimeCollector(NewRegistry())
	c.Stop() // Stop without Start is a no-op
	c.Start(time.Millisecond)
	c.Start(time.Millisecond) // second Start is a no-op
	deadline := time.Now().Add(2 * time.Second)
	for c.goroutines.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.goroutines.Value() == 0 {
		t.Fatal("ticker never collected")
	}
	c.Stop()
	c.Stop() // idempotent
}
