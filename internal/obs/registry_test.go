package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("t_total", "other help"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("t_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestCounterLabelsAreSeparateSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_total", "h", Label{"shard", "0"})
	b := r.Counter("t_total", "h", Label{"shard", "1"})
	if a == b {
		t.Fatal("distinct label sets shared a series")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Fatal("increment leaked across label sets")
	}
	// Label order must not matter.
	x := r.Counter("t2_total", "h", Label{"a", "1"}, Label{"b", "2"})
	y := r.Counter("t2_total", "h", Label{"b", "2"}, Label{"a", "1"})
	if x != y {
		t.Fatal("label order created distinct series")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_total", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter re-registered as gauge")
		}
	}()
	r.Gauge("t_total", "h")
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to a bound lands in that bound's bucket (le = "less or equal"),
// and anything above the last bound lands only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "h", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.10001, 0.5, 0.9, 1, 99} {
		h.Observe(v)
	}
	// Cumulative: le=0.1 -> {0.05, 0.1}; le=0.5 -> +{0.10001, 0.5};
	// le=1 -> +{0.9, 1}; +Inf -> +{99}.
	want := []uint64{2, 4, 6, 7}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if diff := math.Abs(h.Sum() - (0.05 + 0.1 + 0.10001 + 0.5 + 0.9 + 1 + 99)); diff > 1e-9 {
		t.Fatalf("sum off by %g", diff)
	}
}

// TestConcurrentInstruments hammers one counter, gauge, and histogram
// from many goroutines; run under -race this is the data-race proof, and
// the final counts prove no increment was lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Registration from multiple goroutines must also be safe.
			c := r.Counter("c_total", "h")
			g := r.Gauge("g", "h")
			h := r.Histogram("h_seconds", "h", nil)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total", "h").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g", "h").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %g, want %d", got, workers*perWorker)
	}
	h := r.Histogram("h_seconds", "h", nil)
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	cum := h.BucketCounts()
	if cum[len(cum)-1] != workers*perWorker {
		t.Fatalf("+Inf bucket = %d, want %d", cum[len(cum)-1], workers*perWorker)
	}
}

// TestWritePrometheusGolden pins the text exposition format end to end:
// HELP/TYPE headers, sorted families and series, label escaping,
// cumulative buckets, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b counter", Label{"shard", "1"}).Add(3)
	r.Counter("b_total", "b counter", Label{"shard", "0"}).Add(2)
	r.Gauge("a_gauge", "a gauge with \"quotes\"").Set(1.5)
	h := r.Histogram("c_seconds", "c histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_gauge a gauge with "quotes"
# TYPE a_gauge gauge
a_gauge 1.5
# HELP b_total b counter
# TYPE b_total counter
b_total{shard="0"} 2
b_total{shard="1"} 3
# HELP c_seconds c histogram
# TYPE c_seconds histogram
c_seconds_bucket{le="0.1"} 1
c_seconds_bucket{le="1"} 2
c_seconds_bucket{le="+Inf"} 3
c_seconds_sum 2.55
c_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHistogramLabeledBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("s_seconds", "h", []float64{0.5}, Label{"shard", "0"})
	h.ObserveDuration(100 * time.Millisecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`s_seconds_bucket{shard="0",le="0.5"} 1`,
		`s_seconds_bucket{shard="0",le="+Inf"} 1`,
		`s_seconds_sum{shard="0"} 0.1`,
		`s_seconds_count{shard="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
