package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, e.g. {Key: "shard", Value: "3"}.
type Label struct {
	Key, Value string // label name and value as rendered in the exposition
}

// Registry holds named metric families and renders them in Prometheus
// text exposition format. Registration (Counter/Gauge/Histogram) takes a
// lock and is meant for wiring time; the returned instruments are stable
// pointers whose operations are lock-free atomics, safe for concurrent
// use on hot paths.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is all instruments sharing one metric name.
type family struct {
	name, help, typ string // typ: "counter" | "gauge" | "histogram"
	buckets         []float64
	series          map[string]metric // keyed by rendered label string
}

type metric interface {
	write(w io.Writer, name, labels string) error
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the instrument for (name, labels), creating family and
// series as needed. Re-registering the same name with a different type or
// (for histograms) different bucket bounds is a programming error and
// panics, as is a metric name outside the Prometheus charset; help text
// from the first registration wins.
func (r *Registry) lookup(name, help, typ string, buckets []float64, labels []Label, make func() metric) metric {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		if !validMetricName(name) {
			panic(fmt.Sprintf("obs: invalid metric name %q (want [a-zA-Z_:][a-zA-Z0-9_:]*)", name))
		}
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: map[string]metric{}}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	} else if typ == "histogram" && !equalBounds(f.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %q registered with buckets %v, requested with %v", name, f.buckets, buckets))
	}
	m, ok := f.series[ls]
	if !ok {
		m = make()
		f.series[ls] = m
	}
	return m
}

// validMetricName reports whether name matches the Prometheus metric
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches the Prometheus label
// charset [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// equalBounds reports whether two sorted bucket-bound slices are equal.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FamilyInfo describes one registered metric family — the shape tooling
// (scripts/checkmetrics) freezes to catch accidental renames.
type FamilyInfo struct {
	// Name is the metric family name.
	Name string
	// Type is "counter", "gauge", or "histogram".
	Type string
	// Help is the family's help text.
	Help string
}

// Families returns the registered families sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.Lock()
	out := make([]FamilyInfo, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, FamilyInfo{Name: f.name, Type: f.typ, Help: f.help})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counter returns the monotonically increasing counter for (name,
// labels), registering it on first use. By convention name should end in
// "_total".
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, "counter", nil, labels, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the settable gauge for (name, labels), registering it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, "gauge", nil, labels, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns the fixed-bucket histogram for (name, labels),
// registering it on first use. buckets are the upper bounds (ascending,
// +Inf appended implicitly); nil uses LatencyBuckets. All series of one
// family share the bounds of the first registration; re-registering the
// family with different bounds panics — divergent ladders would silently
// mis-bucket whichever caller lost the race.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = LatencyBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return r.lookup(name, help, "histogram", bounds, labels, func() metric {
		return newHistogram(bounds)
	}).(*Histogram)
}

// --- counter ------------------------------------------------------------

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n is a count; negative deltas belong on a Gauge).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
	return err
}

// --- gauge --------------------------------------------------------------

// Gauge is a settable float64, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the value by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
	return err
}

// --- histogram ----------------------------------------------------------

// LatencyBuckets is the default bucket layout for _seconds histograms:
// 10µs to 10s, roughly log-spaced. Index searches on in-memory corpora
// complete in the microsecond range, so the ladder starts far below
// Prometheus's 5ms default.
var LatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed buckets and tracks their sum,
// safe for concurrent use. Bucket counts are stored per-bucket
// (non-cumulative) and accumulated at exposition time.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le-bucket semantics
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCounts returns the cumulative count at each bound plus +Inf —
// the le="..." series of the exposition format.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

func (h *Histogram) write(w io.Writer, name, labels string) error {
	cum := h.BucketCounts()
	for i, b := range h.bounds {
		if err := writeBucket(w, name, labels, formatFloat(b), cum[i]); err != nil {
			return err
		}
	}
	if err := writeBucket(w, name, labels, "+Inf", cum[len(cum)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
	return err
}

// writeBucket emits one le series, splicing the le label into any
// existing label set.
func writeBucket(w io.Writer, name, labels, le string, n uint64) error {
	var ls string
	if labels == "" {
		ls = fmt.Sprintf(`{le=%q}`, le)
	} else {
		ls = fmt.Sprintf(`%s,le=%q}`, strings.TrimSuffix(labels, "}"), le)
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, ls, n)
	return err
}

// --- text exposition ----------------------------------------------------

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, series
// sorted by label string, HELP/TYPE headers once per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		r.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]metric, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		r.mu.Unlock()
		for i, m := range series {
			if err := m.write(w, f.name, keys[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderLabels serializes a label set as {k="v",...} with keys sorted, or
// "" for no labels. Label keys are validated against the Prometheus label
// charset (panic on violation) — a key is emitted unquoted, so unlike a
// value it cannot be escaped into validity and a bad one would corrupt
// every line of the family's exposition.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q (want [a-zA-Z_][a-zA-Z0-9_]*)", l.Key))
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
