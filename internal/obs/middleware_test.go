package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareHonorsClientRequestID(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	var inHandler string
	h := Middleware(nil, logger, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inHandler = FromContext(r.Context()).ID
	}))
	req := httptest.NewRequest("GET", "/search", nil)
	req.Header.Set("X-Request-ID", "upstream-7.f3")
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)

	if got := rw.Header().Get("X-Request-ID"); got != "upstream-7.f3" {
		t.Fatalf("response X-Request-ID = %q, want the client's upstream-7.f3", got)
	}
	if inHandler != "upstream-7.f3" {
		t.Fatalf("handler saw trace ID %q, want upstream-7.f3", inHandler)
	}
	if !strings.Contains(buf.String(), `"requestID":"upstream-7.f3"`) {
		t.Fatalf("wide-event line did not carry the client ID:\n%s", buf.String())
	}
}

func TestMiddlewareRejectsInvalidRequestID(t *testing.T) {
	for _, bad := range []string{strings.Repeat("x", 65), "evil id", "inject\"quote", "new\nline"} {
		h := Middleware(nil, nil, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
		req := httptest.NewRequest("GET", "/", nil)
		req.Header.Set("X-Request-ID", bad)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		got := rw.Header().Get("X-Request-ID")
		if got == bad || got == "" {
			t.Fatalf("invalid client ID %q must be replaced with a generated one, got %q", bad, got)
		}
		if !ValidRequestID(got) {
			t.Fatalf("generated fallback ID %q is itself invalid", got)
		}
	}
}

func TestMiddlewareFeedsRecorder(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	h := Middleware(nil, nil, rec, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if len(rec.Active()) != 1 {
			t.Error("request not in the active table while being served")
		}
		w.WriteHeader(http.StatusBadGateway)
	}))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/search", nil))

	if n := len(rec.Active()); n != 0 {
		t.Fatalf("active table has %d rows after completion, want 0", n)
	}
	dump := rec.Dump()
	if len(dump.Errored) != 1 {
		t.Fatalf("errored retained %d, want the 502 request", len(dump.Errored))
	}
	snap := dump.Errored[0]
	if snap.Status != "error" || snap.Err != http.StatusText(http.StatusBadGateway) {
		t.Fatalf("snapshot status %q err %q, want error/%s", snap.Status, snap.Err, http.StatusText(http.StatusBadGateway))
	}
	if snap.Attrs["method"] != "GET" || snap.Attrs["path"] != "/search" {
		t.Fatalf("wide-event attrs missing method/path: %v", snap.Attrs)
	}
}
