package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// endedTrace builds a trace that appears to have started d ago, so
// Recorder.End buckets it deterministically.
func endedTrace(d time.Duration) *Trace {
	tr := NewTrace()
	tr.start = time.Now().Add(-d)
	return tr
}

func TestRecorderRetainsSlowestPerBucket(t *testing.T) {
	rec := NewRecorder(RecorderConfig{PerBucket: 2})
	// All five land in the (0.025, 0.05] latency bucket; only the two
	// slowest may survive.
	durs := []time.Duration{26, 30, 28, 34, 32} // milliseconds
	for _, ms := range durs {
		tr := endedTrace(ms * time.Millisecond)
		rec.Start(tr)
		rec.End(tr)
	}
	dump := rec.Dump()
	if len(dump.Slowest) != 2 {
		t.Fatalf("Slowest retained %d traces, want 2", len(dump.Slowest))
	}
	if dump.Slowest[0].DurNS < dump.Slowest[1].DurNS {
		t.Fatalf("Slowest not ordered slowest-first: %d < %d", dump.Slowest[0].DurNS, dump.Slowest[1].DurNS)
	}
	// The survivors must be the 34ms and 32ms traces (timer skew is
	// additive and identical in ordering, so relative ranks hold).
	if got := dump.Slowest[0].Dur(); got < 33*time.Millisecond {
		t.Fatalf("slowest survivor %v, want the ~34ms trace", got)
	}
	if got := dump.Slowest[1].Dur(); got < 31*time.Millisecond || got > 34*time.Millisecond {
		t.Fatalf("second survivor %v, want the ~32ms trace", got)
	}
}

func TestRecorderSlowOutliersSurviveFastFlood(t *testing.T) {
	rec := NewRecorder(RecorderConfig{PerBucket: 1, Recent: 4})
	slow := endedTrace(40 * time.Millisecond)
	rec.Start(slow)
	rec.End(slow)
	// A flood of fast requests lands in a different latency bucket, so
	// the slow outlier is not displaced (the point of per-bucket
	// retention) even though the recent ring forgets it.
	for i := 0; i < 100; i++ {
		tr := endedTrace(100 * time.Microsecond)
		rec.Start(tr)
		rec.End(tr)
	}
	dump := rec.Dump()
	found := false
	for _, s := range dump.Slowest {
		if s.ID == slow.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("slow outlier evicted by fast-request flood; per-bucket retention broken")
	}
	for _, s := range dump.Recent {
		if s.ID == slow.ID {
			t.Fatal("recent ring should have forgotten the slow trace after 100 completions")
		}
	}
}

func TestRecorderErroredRing(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Errors: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		tr := NewTrace()
		tr.MarkError(fmt.Sprintf("boom %d", i))
		rec.Start(tr)
		rec.End(tr)
		ids = append(ids, tr.ID)
	}
	part := NewTrace()
	part.MarkPartial()
	rec.Start(part)
	rec.End(part)

	dump := rec.Dump()
	if len(dump.Errored) != 2 {
		t.Fatalf("errored ring holds %d, want capacity 2", len(dump.Errored))
	}
	// Newest first: the partial trace, then the last error; older errors
	// were overwritten.
	if dump.Errored[0].ID != part.ID || dump.Errored[0].Status != "partial" {
		t.Fatalf("Errored[0] = %s/%s, want the partial trace %s", dump.Errored[0].ID, dump.Errored[0].Status, part.ID)
	}
	if dump.Errored[1].ID != ids[2] || dump.Errored[1].Err != "boom 2" {
		t.Fatalf("Errored[1] = %s err=%q, want %s / boom 2", dump.Errored[1].ID, dump.Errored[1].Err, ids[2])
	}
}

func TestRecorderRecentNewestFirst(t *testing.T) {
	rec := NewRecorder(RecorderConfig{Recent: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		tr := NewTrace()
		rec.Start(tr)
		rec.End(tr)
		ids = append(ids, tr.ID)
	}
	dump := rec.Dump()
	if len(dump.Recent) != 2 || dump.Recent[0].ID != ids[2] || dump.Recent[1].ID != ids[1] {
		t.Fatalf("Recent = %+v, want [%s %s]", dump.Recent, ids[2], ids[1])
	}
}

func TestRecorderActiveTable(t *testing.T) {
	rec := NewRecorder(RecorderConfig{})
	old := endedTrace(time.Second)
	old.SetAttrs(Str("path", "/search"))
	young := endedTrace(time.Millisecond)
	rec.Start(old)
	rec.Start(young)

	active := rec.Active()
	if len(active) != 2 {
		t.Fatalf("Active() = %d rows, want 2", len(active))
	}
	if active[0].ID != old.ID {
		t.Fatalf("Active()[0] = %s, want oldest request %s first", active[0].ID, old.ID)
	}
	if active[0].Attrs["path"] != "/search" {
		t.Fatalf("Active()[0].Attrs = %v, want path=/search", active[0].Attrs)
	}
	if active[0].AgeNS < int64(time.Second) {
		t.Fatalf("Active()[0].AgeNS = %d, want >= 1s", active[0].AgeNS)
	}

	rec.End(old)
	rec.End(young)
	if got := rec.Active(); len(got) != 0 {
		t.Fatalf("Active() after End = %d rows, want 0", len(got))
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.Start(NewTrace())
	if snap := rec.End(NewTrace()); snap == nil {
		t.Fatal("nil recorder End must still snapshot the trace for the log line")
	}
	if got := rec.Active(); got != nil {
		t.Fatalf("nil recorder Active() = %v, want nil", got)
	}
	dump := rec.Dump()
	if len(dump.Recent)+len(dump.Slowest)+len(dump.Errored) != 0 {
		t.Fatal("nil recorder Dump() must be empty")
	}
}

func TestLatencyBucketLabel(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{3 * time.Millisecond, "0.005"},
		{10 * time.Millisecond, "0.01"},
		{5 * time.Microsecond, "1e-05"},
		{20 * time.Second, "+Inf"},
	}
	for _, c := range cases {
		if got := LatencyBucketLabel(c.d); got != c.want {
			t.Errorf("LatencyBucketLabel(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestRecorderConcurrentSoak hammers one recorder from writer goroutines
// while readers pull /debug/tracez (JSON and text) and /debug/requestz —
// the ISSUE's retention-under-concurrency acceptance gate; run with
// -race.
func TestRecorderConcurrentSoak(t *testing.T) {
	rec := NewRecorder(RecorderConfig{PerBucket: 2, Errors: 8, Recent: 8})
	const writers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tr := NewTrace()
				rec.Start(tr)
				ctx, end := StartSpan(WithTrace(context.Background(), tr), "scatter")
				_, endChild := StartSpan(ctx, "shard")
				endChild(Int("shard", w))
				end(Int("shards", writers))
				if i%3 == 0 {
					tr.MarkError("injected")
				} else if i%3 == 1 {
					tr.MarkPartial()
				}
				rec.End(tr)
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			tracez := TracezHandler(rec)
			requestz := RequestzHandler(rec)
			for {
				select {
				case <-stop:
					return
				default:
				}
				rw := httptest.NewRecorder()
				switch r % 3 {
				case 0:
					tracez.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/tracez", nil))
				case 1:
					tracez.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/tracez?format=text", nil))
				default:
					requestz.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/requestz", nil))
				}
				if rw.Code != 200 {
					t.Errorf("debug handler status %d", rw.Code)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	// Final state: errored/partial traces retained, every retained status
	// consistent, and the JSON endpoint still round-trips.
	dump := rec.Dump()
	if len(dump.Errored) == 0 {
		t.Fatal("soak recorded errors but the errored ring is empty")
	}
	for _, s := range dump.Errored {
		if s.Status == "ok" {
			t.Fatalf("errored ring retained an ok trace %s", s.ID)
		}
	}
	if len(dump.Slowest) == 0 {
		t.Fatal("no slowest traces retained after soak")
	}
	for _, s := range dump.Slowest {
		if len(s.Spans) == 0 {
			t.Fatalf("retained trace %s lost its spans", s.ID)
		}
	}
	rw := httptest.NewRecorder()
	TracezHandler(rec).ServeHTTP(rw, httptest.NewRequest("GET", "/debug/tracez", nil))
	var out RecorderDump
	if err := json.Unmarshal(rw.Body.Bytes(), &out); err != nil {
		t.Fatalf("tracez JSON does not round-trip: %v", err)
	}
	rw = httptest.NewRecorder()
	TracezHandler(rec).ServeHTTP(rw, httptest.NewRequest("GET", "/debug/tracez?format=text", nil))
	body := rw.Body.String()
	for _, section := range []string{"== recent", "== slowest", "== errored"} {
		if !strings.Contains(body, section) {
			t.Fatalf("tracez text output missing %q section:\n%s", section, body)
		}
	}
}
