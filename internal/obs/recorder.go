package obs

import (
	"sort"
	"sync"
	"time"
)

// RecorderConfig sizes a Recorder's retention.
type RecorderConfig struct {
	// PerBucket is how many of the slowest traces to keep per latency
	// bucket (LatencyBuckets boundaries). 0 means the default (4).
	PerBucket int
	// Errors is the capacity of the errored/partial ring. 0 means the
	// default (64).
	Errors int
	// Recent is the capacity of the most-recently-completed ring. 0 means
	// the default (16).
	Recent int
}

// Default recorder retention sizes.
const (
	defaultPerBucket = 4
	defaultErrors    = 64
	defaultRecent    = 16
)

// Recorder is the flight recorder: it tracks in-flight traces and retains
// a bounded sample of completed ones — the N slowest per latency bucket
// (so slow outliers survive even under high throughput of fast requests,
// OpenCensus-/tracez/-style), every errored or partial trace up to a ring
// limit, and a short ring of the most recent completions for "what just
// happened" debugging. All methods are safe for concurrent use and no-op
// on a nil receiver, so call sites need no wiring checks.
type Recorder struct {
	perBucket int

	mu      sync.Mutex
	active  map[*Trace]struct{}
	buckets [][]*TraceSnapshot // len(LatencyBuckets)+1; each sorted slowest-first
	errored ring
	recent  ring
}

// ring is a fixed-capacity overwrite-oldest buffer of trace snapshots.
type ring struct {
	buf  []*TraceSnapshot
	next int
	full bool
}

func (r *ring) push(s *TraceSnapshot) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

// snapshot returns the ring newest-first.
func (r *ring) snapshot() []*TraceSnapshot {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]*TraceSnapshot, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// NewRecorder builds a Recorder with the given retention sizes (zero
// fields take defaults).
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.PerBucket <= 0 {
		cfg.PerBucket = defaultPerBucket
	}
	if cfg.Errors <= 0 {
		cfg.Errors = defaultErrors
	}
	if cfg.Recent <= 0 {
		cfg.Recent = defaultRecent
	}
	return &Recorder{
		perBucket: cfg.PerBucket,
		active:    make(map[*Trace]struct{}),
		buckets:   make([][]*TraceSnapshot, len(LatencyBuckets)+1),
		errored:   ring{buf: make([]*TraceSnapshot, cfg.Errors)},
		recent:    ring{buf: make([]*TraceSnapshot, cfg.Recent)},
	}
}

// Start registers a trace as in-flight.
func (r *Recorder) Start(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.active[t] = struct{}{}
	r.mu.Unlock()
}

// End removes a trace from the in-flight table, snapshots it, and feeds
// the snapshot into retention. It returns the snapshot so the middleware
// can reuse it for the wide-event log line.
func (r *Recorder) End(t *Trace) *TraceSnapshot {
	if r == nil || t == nil {
		return t.Snapshot()
	}
	snap := t.Snapshot()
	r.mu.Lock()
	delete(r.active, t)
	r.recent.push(snap)
	if snap.Status != "ok" {
		r.errored.push(snap)
	}
	b := latencyBucketIndex(snap.Dur())
	bucket := r.buckets[b]
	switch {
	case len(bucket) < r.perBucket:
		bucket = append(bucket, snap)
		sortBucket(bucket)
		r.buckets[b] = bucket
	case snap.DurNS > bucket[len(bucket)-1].DurNS:
		bucket[len(bucket)-1] = snap
		sortBucket(bucket)
	}
	r.mu.Unlock()
	return snap
}

// sortBucket keeps a retention bucket ordered slowest-first.
func sortBucket(b []*TraceSnapshot) {
	sort.Slice(b, func(i, j int) bool { return b[i].DurNS > b[j].DurNS })
}

// latencyBucketIndex maps a duration onto LatencyBuckets: the index of
// the first boundary ≥ d, or len(LatencyBuckets) for the overflow bucket.
func latencyBucketIndex(d time.Duration) int {
	return sort.SearchFloat64s(LatencyBuckets, d.Seconds())
}

// LatencyBucketLabel renders the latency bucket a duration falls into in
// Prometheus `le` notation (e.g. "0.01"), "+Inf" for the overflow bucket.
// The slow-query log uses it to annotate, exemplar-style, which histogram
// bucket a logged trace ID belongs to.
func LatencyBucketLabel(d time.Duration) string {
	i := latencyBucketIndex(d)
	if i >= len(LatencyBuckets) {
		return "+Inf"
	}
	return formatFloat(LatencyBuckets[i])
}

// ActiveRequest describes one in-flight request for /debug/requestz.
type ActiveRequest struct {
	// ID is the request ID.
	ID string `json:"id"`
	// AgeNS is how long the request has been running, in nanoseconds.
	AgeNS int64 `json:"ageNs"`
	// Attrs are the trace-level attributes set so far.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Active returns the in-flight request table, oldest first.
func (r *Recorder) Active() []ActiveRequest {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	traces := make([]*Trace, 0, len(r.active))
	for t := range r.active {
		traces = append(traces, t)
	}
	r.mu.Unlock()
	out := make([]ActiveRequest, 0, len(traces))
	for _, t := range traces {
		out = append(out, ActiveRequest{ID: t.ID, AgeNS: int64(t.Age()), Attrs: attrMap(t.Attrs())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AgeNS > out[j].AgeNS })
	return out
}

// RecorderDump is the /debug/tracez payload: the retained trace sample.
type RecorderDump struct {
	// Recent holds the most recently completed traces, newest first.
	Recent []*TraceSnapshot `json:"recent"`
	// Slowest holds the per-latency-bucket slowest survivors, slowest
	// first.
	Slowest []*TraceSnapshot `json:"slowest"`
	// Errored holds retained errored/partial traces, newest first.
	Errored []*TraceSnapshot `json:"errored"`
}

// Dump snapshots the recorder's retained traces.
func (r *Recorder) Dump() RecorderDump {
	if r == nil {
		return RecorderDump{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var slow []*TraceSnapshot
	for _, b := range r.buckets {
		slow = append(slow, b...)
	}
	sortBucket(slow)
	return RecorderDump{
		Recent:  r.recent.snapshot(),
		Slowest: slow,
		Errored: r.errored.snapshot(),
	}
}
