package shard

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// Policy configures the fault-tolerance of the scatter-gather query path:
// per-shard deadlines, bounded retry with exponential backoff, hedged
// requests for stragglers, and graceful degradation to partial results.
// The zero value disables every mechanism and reproduces the original
// fail-fast scatter exactly.
//
// The mechanisms compose per shard call, outermost to innermost:
//
//	retry loop (Retries, Backoff)
//	  └─ attempt: per-attempt deadline (ShardTimeout)
//	       └─ primary call ── after HedgeAfter with no reply ── hedge call
//
// A hedge races a second identical call against the primary inside the
// same attempt; the first success wins and the loser is canceled through
// its context. Retries re-run the whole attempt (hedging included) after
// an error, sleeping Backoff<<attempt between tries. Whatever happens,
// the caller's own context deadline is never exceeded: it parents every
// per-attempt context and is checked before every retry sleep.
type Policy struct {
	// ShardTimeout bounds each per-shard attempt (primary and hedge
	// together). 0 means no per-attempt deadline — the caller's context
	// is the only bound.
	ShardTimeout time.Duration
	// Retries is how many additional attempts a failed shard call gets
	// after the first. 0 disables retry.
	Retries int
	// Backoff is the base sleep between retry attempts, doubling each
	// attempt (Backoff, 2·Backoff, 4·Backoff, …). 0 retries immediately.
	Backoff time.Duration
	// HedgeAfter launches a second identical call against the same shard
	// when the primary has not answered within this duration — the
	// classic tail-latency hedge, seeded from the straggler-gap metric
	// (mdseq_shard_straggler_gap_seconds): set it near the observed P99
	// per-shard latency so hedges fire only for stragglers. 0 disables
	// hedging.
	HedgeAfter time.Duration
	// AllowPartial degrades instead of failing: when a shard exhausts
	// its attempts, its results are skipped and the merged answer is
	// flagged Partial with ShardsAnswered telling how many shards
	// contributed. Without it, any shard failure fails the whole query.
	AllowPartial bool
}

// hedged reports whether the policy ever launches hedge requests.
func (p Policy) hedged() bool { return p.HedgeAfter > 0 }

// SetPolicy installs the fault-tolerance policy for subsequent queries.
// Safe to call while queries are in flight; in-flight scatters keep the
// policy they started with. The zero Policy restores fail-fast behavior.
func (s *ShardedDB) SetPolicy(p Policy) { s.pol.Store(&p) }

// Policy returns the fault-tolerance policy currently in force.
func (s *ShardedDB) Policy() Policy {
	if p := s.pol.Load(); p != nil {
		return *p
	}
	return Policy{}
}

// robustCall runs one per-shard operation under the policy: per-attempt
// timeout, optional hedging, bounded retry with exponential backoff. ctx
// is the caller's context (query deadline / client disconnect); it parents
// every attempt and aborts the retry loop as soon as it fires, so a dead
// client or an expired query deadline never waits out a backoff sleep.
func robustCall[T any](ctx context.Context, p Policy, m *shardMetrics, call func(context.Context) (T, error)) (T, error) {
	var zero T
	for attempt := 0; ; attempt++ {
		v, err := hedgedAttempt(ctx, p, m, attempt, call)
		if err == nil {
			return v, nil
		}
		// The caller's own context firing is terminal: retrying cannot
		// beat a deadline that has already passed.
		if ctx.Err() != nil || attempt >= p.Retries {
			return zero, err
		}
		m.incRetry()
		if p.Backoff > 0 {
			t := time.NewTimer(p.Backoff << attempt)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return zero, searchAborted(ctx.Err())
			}
		}
	}
}

// hedgedAttempt runs one attempt: the primary call under the per-attempt
// deadline, plus — when the policy hedges and the primary is silent past
// HedgeAfter — a second identical call racing it. The first success wins
// and cancels the loser via the shared attempt context; if every launched
// call fails, the first error is returned. The results channel is
// buffered for every possible sender, so a losing call's goroutine never
// leaks even though nobody waits for it.
func hedgedAttempt[T any](ctx context.Context, p Policy, m *shardMetrics, attempt int, call func(context.Context) (T, error)) (T, error) {
	var zero T
	tr := obs.FromContext(ctx)
	actx := ctx
	cancel := context.CancelFunc(func() {})
	if p.ShardTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, p.ShardTimeout)
	} else if p.hedged() {
		// Hedging needs a cancelable context so the losing call can be
		// reclaimed the moment the winner returns.
		actx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	type outcome struct {
		v     T
		err   error
		hedge bool
	}
	results := make(chan outcome, 2)
	launch := func(hedge bool) {
		go func() {
			// Each launched call (primary or hedge) gets its own span, so a
			// retained trace shows every attempt a retried/hedged query
			// made and which one produced the answer.
			cctx := actx
			var end func(...obs.Attr)
			if tr != nil {
				cctx, end = obs.StartSpan(actx, "attempt")
			}
			v, err := call(cctx)
			if end != nil {
				end(obs.Int("attempt", attempt), obs.Bool("hedge", hedge),
					obs.Str("outcome", attemptOutcome(err)))
			}
			results <- outcome{v: v, err: err, hedge: hedge}
		}()
	}
	launch(false)
	launched := 1

	var hedgeTimer <-chan time.Time
	var stopTimer func() bool = func() bool { return false }
	if p.hedged() {
		t := time.NewTimer(p.HedgeAfter)
		hedgeTimer = t.C
		stopTimer = t.Stop
	}
	defer stopTimer()

	var firstErr error
	for received := 0; received < launched; {
		select {
		case r := <-results:
			received++
			if r.err == nil {
				if launched == 2 {
					m.hedgeOutcome(r.hedge)
				}
				return r.v, nil
			}
			if errors.Is(r.err, context.DeadlineExceeded) && ctx.Err() == nil {
				// The per-attempt deadline fired, not the caller's: the
				// shard blew its budget.
				m.incDeadlineHit()
			}
			if firstErr == nil {
				firstErr = r.err
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			launch(true)
			launched++
			m.incHedge()
		}
	}
	return zero, firstErr
}

// attemptOutcome labels one launched call's result for its span.
func attemptOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

// searchAborted wraps a fired caller context the same way core does, so
// the error surface is uniform whether the deadline fired inside a shard
// search or between attempts.
func searchAborted(err error) error {
	return fmt.Errorf("shard: query aborted: %w", err)
}
