package shard

// Concurrency hammer for the serving interface: mixed Add / Remove /
// AppendPoints / Search / SearchKNN traffic from many goroutines against
// both implementations of DB. Run with -race (the CI workflow does); the
// final assertion cross-checks that the sharded database's answers are
// permutation-equal to a single-node database rebuilt from the same
// surviving corpus.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func hammer(t *testing.T, db DB, seed int64) {
	t.Helper()
	const (
		writers  = 4
		readers  = 4
		opsEach  = 25
		seqLen   = 32
		appendsN = 4
	)

	// Seed corpus so readers always have something to chew on.
	base := corpus(t, 16, seqLen, seed)
	ids, err := db.AddAll(clone(base))
	if err != nil {
		t.Fatal(err)
	}
	query := &core.Sequence{Label: "query", Points: clone(base)[3].Points[:12]}

	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for op := 0; op < opsEach; op++ {
				switch op % 3 {
				case 0: // add a fresh labeled sequence
					pts := make([]geom.Point, seqLen)
					for i := range pts {
						pts[i] = geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
					}
					s := &core.Sequence{Label: fmt.Sprintf("w%d-op%d", w, op), Points: pts}
					if _, err := db.Add(s); err != nil {
						errc <- err
						return
					}
				case 1: // remove one of the seed ids (errors for repeats are expected)
					id := ids[rng.Intn(len(ids))]
					_ = db.Remove(id)
				case 2: // append to a seed id that may have been removed
					id := ids[rng.Intn(len(ids))]
					_ = db.AppendPoints(id, []geom.Point{{0.4, 0.4, 0.4}, {0.6, 0.6, 0.6}})
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for op := 0; op < opsEach; op++ {
				switch op % 4 {
				case 0:
					if _, _, err := db.Search(query, 0.25); err != nil {
						errc <- err
						return
					}
				case 1:
					if _, _, err := db.SearchParallel(query, 0.25, 2); err != nil {
						errc <- err
						return
					}
				case 2:
					if _, err := db.SearchKNN(query, 5); err != nil {
						errc <- err
						return
					}
				case 3:
					db.Len()
					db.NumMBRs()
				}
			}
		}(r)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestConcurrentMixedWorkloadSingle(t *testing.T) {
	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	hammer(t, db, 100)
}

func TestConcurrentMixedWorkloadSharded(t *testing.T) {
	for _, n := range []int{2, 5} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			sdb, err := New(core.Options{Dim: 3}, n)
			if err != nil {
				t.Fatal(err)
			}
			defer sdb.Close()
			hammer(t, sdb, 200+int64(n))

			// Quiesced: the sharded answers must be permutation-equal to a
			// single-node database holding the identical surviving corpus.
			single := newSingle(t, clone(sdb.Sequences()))
			q := &core.Sequence{Label: "query", Points: corpus(t, 4, 32, 200+int64(n))[3].Points[:12]}
			want, _, err := single.Search(q, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := sdb.Search(q, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(matchKeys(t, got), matchKeys(t, want)) {
				t.Fatalf("post-hammer sharded search diverges:\n got %v\nwant %v",
					matchKeys(t, got), matchKeys(t, want))
			}
			wantNN, err := single.SearchKNN(q, 7)
			if err != nil {
				t.Fatal(err)
			}
			gotNN, err := sdb.SearchKNN(q, 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotNN) != len(wantNN) {
				t.Fatalf("post-hammer kNN sizes diverge: %d vs %d", len(gotNN), len(wantNN))
			}
			for i := range gotNN {
				if gotNN[i].Seq.Label != wantNN[i].Seq.Label {
					t.Fatalf("post-hammer kNN rank %d: %q vs %q",
						i, gotNN[i].Seq.Label, wantNN[i].Seq.Label)
				}
			}
		})
	}
}
