package shard

import (
	"math"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
)

// SetCache attaches a merged-result cache in front of the scatter-gather
// (nil detaches). The front cache stores whole gathered answers —
// matches under global ids, merged stats, the per-shard breakdown — so a
// repeated query skips the entire fan-out, not just the per-shard work.
// The same budget, split evenly, is also installed as per-shard caches
// on the child databases, inheriting the front cache's eviction policy
// and invalidation scope: a query that misses the front (say, after one
// shard ingested) still reuses the other shards' local results.
//
// Invalidation mirrors the single-node protocol: every ShardedDB write
// notifies the front cache with the written sequence's MBR (the
// per-shard caches hear about it from their own databases), entries
// record the region their answer depends on, and a write racing a
// scatter can only waste an entry, never serve a stale one — the cache's
// write-sequence counter, snapshotted before the fan-out, makes Put drop
// any answer a concurrent write may have outdated (see internal/cache).
// Partial answers are never cached.
func (s *ShardedDB) SetCache(c *cache.Cache) {
	s.qcache.Store(c)
	if c == nil {
		for _, db := range s.shards {
			db.SetCache(nil)
		}
		return
	}
	cfg := c.Config()
	n := len(s.shards)
	per := cache.Config{
		MaxEntries: (cfg.MaxEntries + n - 1) / n,
		MaxBytes:   cfg.MaxBytes / int64(n),
		Shards:     cfg.Shards,
		Policy:     cfg.Policy,
		Scope:      cfg.Scope,
	}
	for _, db := range s.shards {
		db.SetCache(cache.New(per))
	}
}

// QueryCache returns the front (merged-result) cache, or nil.
func (s *ShardedDB) QueryCache() *cache.Cache { return s.qcache.Load() }

// Epoch returns the sharded database's write epoch — the number of
// completed writes across all shards, counted at the router.
func (s *ShardedDB) Epoch() uint64 { return s.epoch.Load() }

// notifyWrite marks a completed router write covering the MBR w: the
// epoch advances and the front cache (if any) invalidates every gathered
// answer the write could have affected. The per-shard caches are
// notified by their own databases as part of the shard-local write.
func (s *ShardedDB) notifyWrite(w geom.Rect) {
	s.epoch.Add(1)
	if c := s.qcache.Load(); c != nil {
		c.Invalidate(w)
	}
}

// cachedScatter is one memoized gathered answer: matches under global
// ids, the merged stats, and the per-shard breakdown (so SearchShardsCtx
// hits keep their authoritative shard list). All three are treated as
// read-only by consumers.
type cachedScatter struct {
	matches  []core.Match
	stats    core.SearchStats
	perShard []ShardStats
}

// cachedGatherKNN is one memoized gathered kNN answer. Copied on every
// hit — kNN consumers historically mutate their result slices.
type cachedGatherKNN struct{ results []core.KNNResult }

// approxScatterBytes estimates a cached scatter's retained size.
func approxScatterBytes(v *cachedScatter) int {
	n := 224 + 48*len(v.perShard)
	for _, m := range v.matches {
		n += 64 + 16*len(m.Interval.Ranges())
	}
	return n
}

// scatterRef is the front-cache slot for one range query: cache (nil
// when detached), key, the write-sequence snapshot taken before the
// scatter, and the query's region.
type scatterRef struct {
	c      *cache.Cache
	key    cache.Key
	seq    uint64
	region cache.Region
}

// rangeRef resolves the front-cache slot for a range query. The
// write-sequence counter is read before the fan-out starts, so a write
// landing mid-scatter leaves the stored entry unservable rather than
// stale. The region — query bounds plus ε — is the same Lemma 1 bound
// the per-shard caches use; shard-local and gathered answers depend on
// exactly the same geometry.
func (s *ShardedDB) rangeRef(q *core.Sequence, eps float64) scatterRef {
	c := s.qcache.Load()
	if c == nil {
		return scatterRef{}
	}
	return scatterRef{
		c:      c,
		key:    core.RangeCacheKey(q, eps, s.opts.Partition),
		seq:    c.Seq(),
		region: cache.Region{Rect: geom.BoundingRect(q.Points), Radius: eps},
	}
}

// knnRef resolves the front-cache slot for a gathered kNN query; the
// region radius is filled in by putKNN once the k-th distance is known.
func (s *ShardedDB) knnRef(q *core.Sequence, k int) scatterRef {
	c := s.qcache.Load()
	if c == nil {
		return scatterRef{}
	}
	return scatterRef{
		c:      c,
		key:    core.KNNCacheKey(q, k, s.opts.Partition),
		seq:    c.Seq(),
		region: cache.Region{Rect: geom.BoundingRect(q.Points)},
	}
}

// get returns the cached gathered answer, stats flagged CacheHit.
func (r scatterRef) get() ([]core.Match, core.SearchStats, []ShardStats, bool) {
	if r.c == nil {
		return nil, core.SearchStats{}, nil, false
	}
	v, ok := r.c.Get(r.key)
	if !ok {
		return nil, core.SearchStats{}, nil, false
	}
	cs := v.Data.(*cachedScatter)
	st := cs.stats
	st.CacheHit = true
	return cs.matches, st, cs.perShard, true
}

// put stores a completed gather under the pre-scatter write-sequence
// snapshot, charging the merged cross-shard CPUTime as the entry's cost.
// Partial answers are refused by the cache (Value.Partial passes
// through).
func (r scatterRef) put(ms []core.Match, st core.SearchStats, ps []ShardStats) {
	if r.c == nil {
		return
	}
	v := &cachedScatter{matches: ms, stats: st, perShard: ps}
	r.c.Put(r.key, r.seq, cache.Value{
		Data:    v,
		Bytes:   approxScatterBytes(v),
		Cost:    st.CPUTime,
		Region:  r.region,
		Partial: st.Partial,
	})
}

// getKNN returns a copy of the cached gathered kNN answer.
func (r scatterRef) getKNN() ([]core.KNNResult, bool) {
	if r.c == nil {
		return nil, false
	}
	v, ok := r.c.Get(r.key)
	if !ok {
		return nil, false
	}
	return append([]core.KNNResult(nil), v.Data.(*cachedGatherKNN).results...), true
}

// putKNN stores a complete (non-partial) gathered kNN answer, copied so
// caller mutations cannot reach the entry. The cost is the gather's
// wall-clock (per-shard CPUTime is not merged on the kNN path); the
// region radius is the global k-th distance for a full answer, +Inf
// otherwise (see core's putKNN for the argument).
func (r scatterRef) putKNN(rs []core.KNNResult, k int, took time.Duration) {
	if r.c == nil {
		return
	}
	rs = append([]core.KNNResult(nil), rs...)
	reg := r.region
	reg.Radius = math.Inf(1)
	if len(rs) == k {
		reg.Radius = rs[len(rs)-1].Dist
	}
	r.c.Put(r.key, r.seq, cache.Value{
		Data:   &cachedGatherKNN{results: rs},
		Bytes:  96 + 40*len(rs),
		Cost:   took,
		Region: reg,
	})
}
