package shard

import (
	"repro/internal/cache"
	"repro/internal/core"
)

// SetCache attaches a merged-result cache in front of the scatter-gather
// (nil detaches). The front cache stores whole gathered answers —
// matches under global ids, merged stats, the per-shard breakdown — so a
// repeated query skips the entire fan-out, not just the per-shard work.
// The same budget, split evenly, is also installed as per-shard caches
// on the child databases: a query that misses the front (say, after one
// shard ingested) still reuses the other shards' local results.
//
// Invalidation mirrors the single-node protocol: every ShardedDB write
// advances a write epoch, entries are stamped with the epoch observed
// before the scatter launched, and Get requires an exact match — so a
// write racing a scatter can only waste an entry, never serve a stale
// one. Partial answers are never cached (see internal/cache).
func (s *ShardedDB) SetCache(c *cache.Cache) {
	s.qcache.Store(c)
	if c == nil {
		for _, db := range s.shards {
			db.SetCache(nil)
		}
		return
	}
	cfg := c.Config()
	n := len(s.shards)
	per := cache.Config{
		MaxEntries: (cfg.MaxEntries + n - 1) / n,
		MaxBytes:   cfg.MaxBytes / int64(n),
		Shards:     cfg.Shards,
	}
	for _, db := range s.shards {
		db.SetCache(cache.New(per))
	}
}

// QueryCache returns the front (merged-result) cache, or nil.
func (s *ShardedDB) QueryCache() *cache.Cache { return s.qcache.Load() }

// Epoch returns the sharded database's write epoch — the number of
// completed writes across all shards, counted at the router.
func (s *ShardedDB) Epoch() uint64 { return s.epoch.Load() }

// bumpEpoch marks a completed write, invalidating every cached scatter.
func (s *ShardedDB) bumpEpoch() { s.epoch.Add(1) }

// cachedScatter is one memoized gathered answer: matches under global
// ids, the merged stats, and the per-shard breakdown (so SearchShardsCtx
// hits keep their authoritative shard list). All three are treated as
// read-only by consumers.
type cachedScatter struct {
	matches  []core.Match
	stats    core.SearchStats
	perShard []ShardStats
}

// cachedGatherKNN is one memoized gathered kNN answer. Copied on every
// hit — kNN consumers historically mutate their result slices.
type cachedGatherKNN struct{ results []core.KNNResult }

// approxScatterBytes estimates a cached scatter's retained size.
func approxScatterBytes(v *cachedScatter) int {
	n := 224 + 48*len(v.perShard)
	for _, m := range v.matches {
		n += 64 + 16*len(m.Interval.Ranges())
	}
	return n
}

// scatterRef is the front-cache slot for one range query: cache (nil
// when detached), key, and the epoch snapshotted before the scatter.
type scatterRef struct {
	c     *cache.Cache
	key   cache.Key
	epoch uint64
}

// rangeRef resolves the front-cache slot for a range query. The epoch is
// read before the fan-out starts, so a write landing mid-scatter leaves
// the stored entry unservable rather than stale.
func (s *ShardedDB) rangeRef(q *core.Sequence, eps float64) scatterRef {
	c := s.qcache.Load()
	if c == nil {
		return scatterRef{}
	}
	return scatterRef{c: c, key: core.RangeCacheKey(q, eps, s.opts.Partition), epoch: s.epoch.Load()}
}

// knnRef resolves the front-cache slot for a gathered kNN query.
func (s *ShardedDB) knnRef(q *core.Sequence, k int) scatterRef {
	c := s.qcache.Load()
	if c == nil {
		return scatterRef{}
	}
	return scatterRef{c: c, key: core.KNNCacheKey(q, k, s.opts.Partition), epoch: s.epoch.Load()}
}

// get returns the cached gathered answer, stats flagged CacheHit.
func (r scatterRef) get() ([]core.Match, core.SearchStats, []ShardStats, bool) {
	if r.c == nil {
		return nil, core.SearchStats{}, nil, false
	}
	v, ok := r.c.Get(r.key, r.epoch)
	if !ok {
		return nil, core.SearchStats{}, nil, false
	}
	cs := v.Data.(*cachedScatter)
	st := cs.stats
	st.CacheHit = true
	return cs.matches, st, cs.perShard, true
}

// put stores a completed gather under the pre-scatter epoch. Partial
// answers are refused by the cache (Value.Partial passes through).
func (r scatterRef) put(ms []core.Match, st core.SearchStats, ps []ShardStats) {
	if r.c == nil {
		return
	}
	v := &cachedScatter{matches: ms, stats: st, perShard: ps}
	r.c.Put(r.key, r.epoch, cache.Value{Data: v, Bytes: approxScatterBytes(v), Partial: st.Partial})
}

// getKNN returns a copy of the cached gathered kNN answer.
func (r scatterRef) getKNN() ([]core.KNNResult, bool) {
	if r.c == nil {
		return nil, false
	}
	v, ok := r.c.Get(r.key, r.epoch)
	if !ok {
		return nil, false
	}
	return append([]core.KNNResult(nil), v.Data.(*cachedGatherKNN).results...), true
}

// putKNN stores a complete (non-partial) gathered kNN answer, copied so
// caller mutations cannot reach the entry.
func (r scatterRef) putKNN(rs []core.KNNResult) {
	if r.c == nil {
		return
	}
	rs = append([]core.KNNResult(nil), rs...)
	r.c.Put(r.key, r.epoch, cache.Value{Data: &cachedGatherKNN{results: rs}, Bytes: 96 + 40*len(rs)})
}
