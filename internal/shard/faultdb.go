package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Backend is the per-shard query surface the robust scatter calls. A
// shard's own *core.Database satisfies it; tests and the fault-injection
// harness substitute wrappers via SetShardBackend. Only the query path
// goes through a Backend — writes, lookups, and shape accessors always
// hit the shard's real database, because fault tolerance is a property of
// the latency-sensitive serving path, not of ingestion.
type Backend interface {
	// SearchCtx runs the three-phase range search under ctx.
	SearchCtx(ctx context.Context, q *core.Sequence, eps float64) ([]core.Match, core.SearchStats, error)
	// SearchKNNBoundedCtx runs the bounded local top-k under ctx.
	SearchKNNBoundedCtx(ctx context.Context, q *core.Sequence, k int, bound float64) ([]core.KNNResult, error)
	// SearchBatchCtx answers several range queries in one pass under ctx,
	// one result set and stats value per query, in input order.
	SearchBatchCtx(ctx context.Context, qs []*core.Sequence, eps float64) ([][]core.Match, []core.SearchStats, error)
	// SearchMetricCtx runs the exact-metric range search under ctx.
	SearchMetricCtx(ctx context.Context, q *core.Sequence, eps float64, m core.Metric) ([]core.MetricMatch, core.SearchStats, error)
	// SearchKNNMetricBoundedCtx runs the bounded local metric top-k under
	// ctx; the bound is an exact metric distance (the gather's running
	// k-th best), so shard-local pruning uses the metric's own lower
	// bounds against it.
	SearchKNNMetricBoundedCtx(ctx context.Context, q *core.Sequence, k int, bound float64, m core.Metric) ([]core.KNNResult, error)
}

var _ Backend = (*core.Database)(nil)

// Fault is one scripted behavior a FaultDB applies to a call before (or
// instead of) forwarding it to the wrapped backend. The zero Fault is a
// clean pass-through.
type Fault struct {
	// Delay stalls the call this long before forwarding it. The stall
	// honors the call's context: if the context fires first, the call
	// returns the context's error without touching the backend.
	Delay time.Duration
	// Err, when non-nil, is returned (after any Delay) without touching
	// the backend — an injected hard failure.
	Err error
	// Hang blocks until the call's context fires and returns the
	// context's error — a wedged shard. A Hang under a context with no
	// deadline blocks forever, which is exactly the failure mode the
	// deadline tests must prove impossible to hit from the serving path.
	Hang bool
}

// FaultDB wraps a per-shard Backend and injects scripted faults into its
// query calls — the deterministic harness behind the TestFault suite and
// the straggler benchmark. Each call consumes the next Fault in the
// script; calls beyond the script pass through cleanly (or, with Cycle,
// the script repeats forever, modeling a persistently flaky shard). All
// methods are safe for concurrent use.
type FaultDB struct {
	inner  Backend
	script []Fault
	// Cycle repeats the script indefinitely instead of passing through
	// once it is exhausted. Set before serving; not synchronized.
	Cycle bool

	mu       sync.Mutex
	next     int          // index into script of the next fault to apply
	calls    atomic.Int64 // every query call, faulted or clean
	released atomic.Int64 // Hang faults that unblocked via context
}

// NewFaultDB wraps inner with the given fault script.
func NewFaultDB(inner Backend, script ...Fault) *FaultDB {
	return &FaultDB{inner: inner, script: script}
}

// Calls returns how many query calls the wrapper has received — attempts,
// hedges, and retries all count, which is how tests assert "the retry
// actually happened" or "exactly one hedge was launched".
func (f *FaultDB) Calls() int { return int(f.calls.Load()) }

// Released returns how many Hang faults have unblocked because their
// call's context fired — the observable that proves hedge- and
// deadline-cancellation reach a wedged shard.
func (f *FaultDB) Released() int { return int(f.released.Load()) }

// take pops the next scripted fault, or a zero Fault past the script.
func (f *FaultDB) take() Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.next >= len(f.script) {
		if !f.Cycle || len(f.script) == 0 {
			return Fault{}
		}
		f.next = 0
	}
	ft := f.script[f.next]
	f.next++
	return ft
}

// apply runs one scripted fault against ctx. A nil return means the call
// should proceed to the wrapped backend.
func (f *FaultDB) apply(ctx context.Context) error {
	f.calls.Add(1)
	ft := f.take()
	if ft.Hang {
		<-ctx.Done()
		f.released.Add(1)
		return searchAborted(ctx.Err())
	}
	if ft.Delay > 0 {
		t := time.NewTimer(ft.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return searchAborted(ctx.Err())
		}
	}
	return ft.Err
}

// SearchCtx applies the next scripted fault, then forwards to the wrapped
// backend.
func (f *FaultDB) SearchCtx(ctx context.Context, q *core.Sequence, eps float64) ([]core.Match, core.SearchStats, error) {
	if err := f.apply(ctx); err != nil {
		return nil, core.SearchStats{}, err
	}
	return f.inner.SearchCtx(ctx, q, eps)
}

// SearchKNNBoundedCtx applies the next scripted fault, then forwards to
// the wrapped backend.
func (f *FaultDB) SearchKNNBoundedCtx(ctx context.Context, q *core.Sequence, k int, bound float64) ([]core.KNNResult, error) {
	if err := f.apply(ctx); err != nil {
		return nil, err
	}
	return f.inner.SearchKNNBoundedCtx(ctx, q, k, bound)
}

// SearchBatchCtx applies the next scripted fault, then forwards to the
// wrapped backend. A batch consumes one fault — it models one network
// call, however many queries ride in it.
func (f *FaultDB) SearchBatchCtx(ctx context.Context, qs []*core.Sequence, eps float64) ([][]core.Match, []core.SearchStats, error) {
	if err := f.apply(ctx); err != nil {
		return nil, nil, err
	}
	return f.inner.SearchBatchCtx(ctx, qs, eps)
}

// SearchMetricCtx applies the next scripted fault, then forwards to the
// wrapped backend.
func (f *FaultDB) SearchMetricCtx(ctx context.Context, q *core.Sequence, eps float64, m core.Metric) ([]core.MetricMatch, core.SearchStats, error) {
	if err := f.apply(ctx); err != nil {
		return nil, core.SearchStats{}, err
	}
	return f.inner.SearchMetricCtx(ctx, q, eps, m)
}

// SearchKNNMetricBoundedCtx applies the next scripted fault, then
// forwards to the wrapped backend.
func (f *FaultDB) SearchKNNMetricBoundedCtx(ctx context.Context, q *core.Sequence, k int, bound float64, m core.Metric) ([]core.KNNResult, error) {
	if err := f.apply(ctx); err != nil {
		return nil, err
	}
	return f.inner.SearchKNNMetricBoundedCtx(ctx, q, k, bound, m)
}
