package shard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

// Metric scatter-gather: the exact-metric range and kNN queries fanned
// out over the shards. The per-shard calls go through the Backend (so
// the fault-tolerance Policy — timeout, retry, hedging, partial results
// — applies exactly as on the D path), and the kNN gather's running
// k-th-best distance seeds each shard's refinement bound. Under
// MetricDTW that bound is an exact DTW distance pruned against the
// envelope lower bounds inside each shard — never D's Dnorm bound,
// which does not underestimate DTW and would cause false dismissals.

// SearchMetric runs the exact-metric range search on every shard
// concurrently and merges the answers by ascending global id — the
// union of the per-shard ε-balls, identical to a single-node metric
// search over the same corpus.
func (s *ShardedDB) SearchMetric(q *core.Sequence, eps float64, m core.Metric) ([]core.MetricMatch, core.SearchStats, error) {
	return s.SearchMetricCtx(context.Background(), q, eps, m)
}

// SearchMetricCtx is SearchMetric under a caller context and the
// fault-tolerance Policy in force (see SearchCtx for the contract).
func (s *ShardedDB) SearchMetricCtx(ctx context.Context, q *core.Sequence, eps float64, m core.Metric) ([]core.MetricMatch, core.SearchStats, error) {
	if m == nil {
		m = core.MetricD{}
	}
	ref := s.metricRangeRef(q, eps, m)
	tr := obs.FromContext(ctx)
	if ms, st, ok := ref.getMetric(); ok {
		if tr != nil {
			tr.RecordSpan(obs.SpanFromContext(ctx), "cache-hit", 0, obs.Str("tier", "front"))
		}
		return ms, st, nil
	}
	n := len(s.shards)
	pol := s.Policy()
	met := s.metrics()
	scatterCtx, endScatter := obs.StartSpan(ctx, "scatter")
	type result struct {
		matches []core.MetricMatch
		stats   core.SearchStats
		wall    time.Duration
		err     error
	}
	results := make([]result, n)
	sem := make(chan struct{}, scatterWorkers(n))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			sem <- struct{}{}
			defer func() { <-sem }()
			b := s.backend(i)
			shardCtx := scatterCtx
			var endShard func(...obs.Attr)
			if tr != nil {
				shardCtx, endShard = obs.StartSpan(scatterCtx, "shard")
			}
			rep, err := robustCall(shardCtx, pol, met, func(actx context.Context) (metricReply, error) {
				ms, st, err := b.SearchMetricCtx(actx, q, eps, m)
				return metricReply{matches: ms, stats: st}, err
			})
			if endShard != nil {
				endShard(obs.Int("shard", i), obs.Bool("ok", err == nil))
			}
			results[i] = result{matches: rep.matches, stats: rep.stats, wall: time.Since(t0), err: err}
		}(i)
	}
	wg.Wait()

	var merged core.SearchStats
	answered := 0
	var out []core.MetricMatch
	var firstErr error
	for i, r := range results {
		if r.err != nil {
			if !pol.AllowPartial {
				endScatter(obs.Int("shards", n), obs.Int("failed_shard", i))
				return nil, merged, fmt.Errorf("shard: shard %d: %w", i, r.err)
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("shard: shard %d: %w", i, r.err)
			}
			continue
		}
		for _, mm := range r.matches {
			mm.SeqID = s.globalID(i, mm.SeqID)
			out = append(out, mm)
		}
		answered++
		mergeStats(&merged, r.stats)
	}
	merged.ShardsAnswered = answered
	merged.Partial = answered < n
	endScatter(obs.Int("shards", n),
		obs.Int("shards_answered", answered),
		obs.Bool("partial", merged.Partial))
	if merged.Partial {
		tr.MarkPartial()
	}
	if answered == 0 {
		return nil, merged, firstErr
	}
	sort.Slice(out, func(a, b int) bool { return out[a].SeqID < out[b].SeqID })
	if met != nil {
		durs := make([]time.Duration, n)
		for i, r := range results {
			durs[i] = r.wall
		}
		met.recordScatter(merged, durs)
		if _, ok := m.(core.MetricDTW); ok {
			met.recordDTW(false, merged)
		}
	}
	ref.putMetric(out, merged)
	return out, merged, nil
}

// metricReply carries one shard's metric range answer through robustCall.
type metricReply struct {
	matches []core.MetricMatch
	stats   core.SearchStats
}

// SearchKNNMetric scatters an exact-metric k-nearest query: every shard
// computes its local metric top k, bound-seeded with the gather's
// running global k-th-best metric distance, and the gather merges the
// disjoint lists. The seed is always a distance under the query's own
// metric, so the shard-local pruning it drives (envelope and LB_Keogh
// bounds for DTW) can never dismiss a true neighbor.
func (s *ShardedDB) SearchKNNMetric(q *core.Sequence, k int, m core.Metric) ([]core.KNNResult, error) {
	return s.SearchKNNMetricCtx(context.Background(), q, k, m)
}

// SearchKNNMetricCtx is SearchKNNMetric under a caller context and the
// fault-tolerance Policy in force, with SearchKNNCtx's partial-answer
// caveat: with AllowPartial a skipped shard's neighbors are silently
// missing.
func (s *ShardedDB) SearchKNNMetricCtx(ctx context.Context, q *core.Sequence, k int, m core.Metric) ([]core.KNNResult, error) {
	if k <= 0 {
		return nil, nil
	}
	if m == nil {
		m = core.MetricD{}
	}
	ref := s.metricKNNRef(q, k, m)
	if rs, ok := ref.getKNN(); ok {
		return rs, nil
	}
	t0 := time.Now()
	n := len(s.shards)
	pol := s.Policy()
	met := s.metrics()

	gather := &knnGather{k: k}
	var seeded, unseeded atomic.Int64
	errs := make([]error, n)
	sem := make(chan struct{}, scatterWorkers(n))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			b := s.backend(i)
			local, err := robustCall(ctx, pol, met, func(actx context.Context) ([]core.KNNResult, error) {
				bound := gather.worst()
				if math.IsInf(bound, 1) {
					unseeded.Add(1)
				} else {
					seeded.Add(1)
				}
				return b.SearchKNNMetricBoundedCtx(actx, q, k, bound, m)
			})
			if err != nil {
				errs[i] = err
				return
			}
			for j := range local {
				local[j].SeqID = s.globalID(i, local[j].SeqID)
			}
			gather.merge(local)
		}(i)
	}
	wg.Wait()
	answered := 0
	var firstErr error
	for i, err := range errs {
		if err == nil {
			answered++
			continue
		}
		if !pol.AllowPartial {
			return nil, fmt.Errorf("shard: shard %d: %w", i, err)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("shard: shard %d: %w", i, err)
		}
	}
	if answered == 0 {
		return nil, firstErr
	}
	if met != nil {
		if answered < n {
			met.incPartial()
		}
		met.recordKNN(time.Since(t0), int(seeded.Load()), int(unseeded.Load()))
		if _, ok := m.(core.MetricDTW); ok {
			met.recordDTW(true, core.SearchStats{})
		}
	}
	out := gather.top()
	if answered == n {
		ref.putKNN(out, k, time.Since(t0))
	}
	return out, nil
}

// SequentialSearchMetric runs the exhaustive exact-metric baseline on
// every shard concurrently and merges by ascending global id.
func (s *ShardedDB) SequentialSearchMetric(q *core.Sequence, eps float64, m core.Metric) ([]core.MetricMatch, error) {
	n := len(s.shards)
	results := make([][]core.MetricMatch, n)
	errs := make([]error, n)
	sem := make(chan struct{}, scatterWorkers(n))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = s.shards[i].SequentialSearchMetric(q, eps, m)
		}(i)
	}
	wg.Wait()
	var out []core.MetricMatch
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", i, errs[i])
		}
		for _, r := range results[i] {
			r.SeqID = s.globalID(i, r.SeqID)
			out = append(out, r)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].SeqID < out[b].SeqID })
	return out, nil
}

// cachedMetricScatter is one memoized gathered metric range answer.
type cachedMetricScatter struct {
	matches []core.MetricMatch
	stats   core.SearchStats
}

// metricRangeRef resolves the front-cache slot for a metric range query;
// the key folds the metric's identity and window, so answers under
// different distance semantics never alias (see core's fingerprint).
func (s *ShardedDB) metricRangeRef(q *core.Sequence, eps float64, m core.Metric) scatterRef {
	c := s.qcache.Load()
	if c == nil {
		return scatterRef{}
	}
	return scatterRef{
		c:      c,
		key:    core.MetricRangeCacheKey(q, eps, s.opts.Partition, m),
		seq:    c.Seq(),
		region: cache.Region{Rect: geom.BoundingRect(q.Points), Radius: eps},
	}
}

// metricKNNRef resolves the front-cache slot for a gathered metric kNN
// query; putKNN fills the region radius in.
func (s *ShardedDB) metricKNNRef(q *core.Sequence, k int, m core.Metric) scatterRef {
	c := s.qcache.Load()
	if c == nil {
		return scatterRef{}
	}
	return scatterRef{
		c:      c,
		key:    core.MetricKNNCacheKey(q, k, s.opts.Partition, m),
		seq:    c.Seq(),
		region: cache.Region{Rect: geom.BoundingRect(q.Points)},
	}
}

// getMetric returns the cached gathered metric answer, stats flagged
// CacheHit.
func (r scatterRef) getMetric() ([]core.MetricMatch, core.SearchStats, bool) {
	if r.c == nil {
		return nil, core.SearchStats{}, false
	}
	v, ok := r.c.Get(r.key)
	if !ok {
		return nil, core.SearchStats{}, false
	}
	cs := v.Data.(*cachedMetricScatter)
	st := cs.stats
	st.CacheHit = true
	return cs.matches, st, true
}

// putMetric stores a completed metric gather under the pre-scatter
// write-sequence snapshot.
func (r scatterRef) putMetric(ms []core.MetricMatch, st core.SearchStats) {
	if r.c == nil {
		return
	}
	r.c.Put(r.key, r.seq, cache.Value{
		Data:    &cachedMetricScatter{matches: ms, stats: st},
		Bytes:   224 + 40*len(ms),
		Cost:    st.CPUTime,
		Region:  r.region,
		Partial: st.Partial,
	})
}
