package shard

// Straggler benchmark for the hedging path: one of eight shards is made
// deterministically slow through a cycling FaultDB script, and the same
// query mix runs with hedging off and on. The hedged run must cut the
// injected tail (P99) because every hedge lands on the script's fast
// entry while the primary is stuck in the slow one.
//
// The measurement doubles as the EXPERIMENTS.md fault-injection
// experiment: when BENCH_ROBUSTNESS_OUT is set (CI sets it to
// BENCH_robustness.json) the test writes the before/after percentiles and
// the hedges-won count as a JSON document.

import (
	"context"
	"encoding/json"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

const (
	stragglerShards  = 8
	stragglerDelay   = 40 * time.Millisecond
	stragglerQueries = 30
	stragglerHedge   = 4 * time.Millisecond
)

// stragglerFixture builds an 8-shard database whose shard 0 alternates
// slow/fast per call: a cycling script of {Delay} then {} means an
// unhedged workload sees every other query stall, while a hedged workload
// has each stalled primary raced by a pass-through hedge.
func stragglerFixture(t testing.TB) (*ShardedDB, *core.Sequence, *obs.Registry) {
	t.Helper()
	seqs := corpus(t, 64, 64, 7)
	sdb := newSharded(t, clone(seqs), stragglerShards)
	f := NewFaultDB(sdb.Shard(0), Fault{Delay: stragglerDelay}, Fault{})
	f.Cycle = true
	sdb.SetShardBackend(0, f)
	reg := obs.NewRegistry()
	sdb.SetMetrics(reg)
	return sdb, &core.Sequence{Label: "q", Points: seqs[1].Points[8:40]}, reg
}

// runQueries executes n identical scatter searches and returns each
// query's wall latency.
func runQueries(t testing.TB, sdb *ShardedDB, q *core.Sequence, n int) []time.Duration {
	t.Helper()
	out := make([]time.Duration, n)
	for i := range out {
		t0 := time.Now()
		if _, _, err := sdb.SearchCtx(context.Background(), q, 0.25); err != nil {
			t.Fatal(err)
		}
		out[i] = time.Since(t0)
	}
	return out
}

// percentile returns the p-th percentile (0..100) of the sample by
// nearest-rank on the sorted copy.
func percentile(samples []time.Duration, p float64) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(float64(len(s)-1) * p / 100)
	return s[idx]
}

// TestFaultStragglerHedgingP99 is the acceptance measurement: with one
// shard of eight injected slow, enabling hedged requests must drop the
// workload's P99 below the unhedged P99, and the win must be visible in
// mdseq_shard_hedges_won_total. With BENCH_ROBUSTNESS_OUT set the
// numbers are written as BENCH_robustness.json for the bench trajectory.
func TestFaultStragglerHedgingP99(t *testing.T) {
	sdb, q, reg := stragglerFixture(t)

	// Phase 1: hedging off — every other query eats the full injected
	// delay, so P99 is pinned at >= stragglerDelay by construction.
	unhedged := runQueries(t, sdb, q, stragglerQueries)

	// Phase 2: hedging on — each stalled primary is raced after
	// stragglerHedge by a hedge that draws the script's fast entry.
	sdb.SetPolicy(Policy{HedgeAfter: stragglerHedge})
	hedged := runQueries(t, sdb, q, stragglerQueries)

	up50, up99 := percentile(unhedged, 50), percentile(unhedged, 99)
	hp50, hp99 := percentile(hedged, 50), percentile(hedged, 99)
	hedgesWon := reg.Counter("mdseq_shard_hedges_won_total", "").Value()
	t.Logf("unhedged p50=%v p99=%v | hedged p50=%v p99=%v | hedges won=%d",
		up50, up99, hp50, hp99, hedgesWon)

	if up99 < stragglerDelay {
		t.Fatalf("unhedged P99 %v below the injected %v delay; fixture broken", up99, stragglerDelay)
	}
	if hp99 >= up99 {
		t.Fatalf("hedging did not cut the tail: hedged P99 %v >= unhedged P99 %v", hp99, up99)
	}
	if hedgesWon == 0 {
		t.Fatal("hedges_won_total = 0; the straggler's hedges should win")
	}

	if out := os.Getenv("BENCH_ROBUSTNESS_OUT"); out != "" {
		doc := map[string]any{
			"name":              "straggler_hedging",
			"shards":            stragglerShards,
			"straggler_shards":  1,
			"injected_delay_ms": float64(stragglerDelay) / float64(time.Millisecond),
			"hedge_after_ms":    float64(stragglerHedge) / float64(time.Millisecond),
			"queries_per_mode":  stragglerQueries,
			"unhedged_p50_ms":   float64(up50) / float64(time.Millisecond),
			"unhedged_p99_ms":   float64(up99) / float64(time.Millisecond),
			"hedged_p50_ms":     float64(hp50) / float64(time.Millisecond),
			"hedged_p99_ms":     float64(hp99) / float64(time.Millisecond),
			"hedges_won":        hedgesWon,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote %s", out)
	}
}

// BenchmarkStragglerScatter reports the same comparison in benchmark
// form: ns/op with one slow shard of eight, hedging off vs on.
func BenchmarkStragglerScatter(b *testing.B) {
	for _, mode := range []struct {
		name string
		pol  Policy
	}{
		{"unhedged", Policy{}},
		{"hedged", Policy{HedgeAfter: stragglerHedge}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sdb, q, _ := stragglerFixture(b)
			sdb.SetPolicy(mode.pol)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sdb.SearchCtx(context.Background(), q, 0.25); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
