package shard

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
)

// TestMergeStatsQueryMBRsTakenOnce is the regression test for the merge
// bug where every folded shard overwrote QueryMBRs, so the merged value
// was whichever shard happened to fold last — wrong whenever a later
// shard reported a different (e.g. zero) value.
func TestMergeStatsQueryMBRsTakenOnce(t *testing.T) {
	var dst core.SearchStats
	mergeStats(&dst, core.SearchStats{QueryMBRs: 5, CandidatesDmbr: 2})
	mergeStats(&dst, core.SearchStats{QueryMBRs: 7, CandidatesDmbr: 3})
	if dst.QueryMBRs != 5 {
		t.Fatalf("QueryMBRs = %d after merging 5 then 7; want the first shard's 5", dst.QueryMBRs)
	}
	if dst.CandidatesDmbr != 5 {
		t.Fatalf("CandidatesDmbr = %d, want summed 5", dst.CandidatesDmbr)
	}
	// A zero-valued later fold must not erase it either.
	mergeStats(&dst, core.SearchStats{})
	if dst.QueryMBRs != 5 {
		t.Fatalf("QueryMBRs = %d after zero fold, want 5", dst.QueryMBRs)
	}
}

// TestScatterQueryMBRsMatchShards asserts end to end that the merged
// QueryMBRs equals every answered shard's value — they all partition the
// same query under the same config.
func TestScatterQueryMBRsMatchShards(t *testing.T) {
	seqs := corpus(t, 32, 64, 77)
	sdb := newSharded(t, clone(seqs), 4)
	q := &core.Sequence{Label: "query", Points: seqs[5].Points[4:36]}
	_, st, per, err := sdb.SearchShards(q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range per {
		if ps.Stats.QueryMBRs != st.QueryMBRs {
			t.Fatalf("shard %d QueryMBRs %d != merged %d", ps.Shard, ps.Stats.QueryMBRs, st.QueryMBRs)
		}
	}
}

// TestFaultParallelCtxHang proves the parallel serving path propagates
// the caller's deadline into a wedged shard: before SearchParallelCtx
// existed, the server's parallel route used a background context and a
// hung shard stalled the request forever.
func TestFaultParallelCtxHang(t *testing.T) {
	sdb, q, fdb := faultFixture(t, 4, 1, Fault{Hang: true})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	t0 := time.Now()
	_, _, err := sdb.SearchParallelCtx(ctx, q, 0.25, 2)
	took := time.Since(t0)
	if err == nil {
		t.Fatal("hung shard: want error, got success")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if took > 5*time.Second {
		t.Fatalf("SearchParallelCtx took %v despite 50ms caller deadline", took)
	}
	waitFor(t, 2*time.Second, func() bool { return fdb.Released() == 1 },
		"hung call released by its canceled context")
}

// TestShardedCacheHitAndInvalidation covers the front cache end to end:
// fill, hit, write-invalidate, refill — plus the per-shard caches the
// same SetCache call installs.
func TestShardedCacheHitAndInvalidation(t *testing.T) {
	seqs := corpus(t, 32, 64, 78)
	sdb := newSharded(t, clone(seqs), 4)
	sdb.SetCache(cache.New(cache.Config{}))
	for i := 0; i < sdb.Shards(); i++ {
		if sdb.Shard(i).QueryCache() == nil {
			t.Fatalf("shard %d got no per-shard cache", i)
		}
	}
	q := &core.Sequence{Label: "query", Points: seqs[5].Points[4:36]}

	first, st1, err := sdb.Search(q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit {
		t.Fatal("first scatter flagged as cache hit")
	}
	second, st2, err := sdb.Search(q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("repeated scatter missed the front cache")
	}
	if !reflect.DeepEqual(matchKeys(t, second), matchKeys(t, first)) {
		t.Fatal("cached scatter differs from computed one")
	}
	if st2.ShardsAnswered != st1.ShardsAnswered {
		t.Fatalf("cached ShardsAnswered = %d, want %d", st2.ShardsAnswered, st1.ShardsAnswered)
	}

	// The per-shard stats survive the cache for the shard-diagnostics path.
	_, _, per, err := sdb.SearchShardsCtx(context.Background(), q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != sdb.Shards() {
		t.Fatalf("cached SearchShards returned %d shard stats, want %d", len(per), sdb.Shards())
	}

	// A write — to any shard — invalidates the whole front cache.
	cp := seqs[5].Clone()
	cp.Label = "copy-of-5"
	id, err := sdb.Add(cp)
	if err != nil {
		t.Fatal(err)
	}
	third, st3, err := sdb.Search(q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if st3.CacheHit {
		t.Fatal("scatter after a write served from the cache")
	}
	found := false
	for _, m := range third {
		if m.SeqID == id {
			found = true
		}
	}
	if !found {
		t.Fatal("newly added copy missing from post-write scatter")
	}
}

// TestShardedKNNCacheIsolation proves cached gathered kNN answers are
// copied on every hit and survive caller mutation.
func TestShardedKNNCacheIsolation(t *testing.T) {
	seqs := corpus(t, 32, 64, 79)
	sdb := newSharded(t, clone(seqs), 3)
	sdb.SetCache(cache.New(cache.Config{}))
	q := &core.Sequence{Label: "query", Points: seqs[5].Points[4:36]}

	first, err := sdb.SearchKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("no neighbors")
	}
	if sdb.QueryCache().Len() == 0 {
		t.Fatal("gathered kNN answer not cached")
	}
	second, err := sdb.SearchKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := second[0].SeqID
	second[0].SeqID = 0xDEAD
	third, err := sdb.SearchKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if third[0].SeqID != want {
		t.Fatalf("cache entry corrupted by caller mutation: SeqID = %#x", third[0].SeqID)
	}
}

// TestShardedBatchMatchesSearch proves every batch member's merged
// answer equals its solo scatter, duplicates flagged as reused.
func TestShardedBatchMatchesSearch(t *testing.T) {
	seqs := corpus(t, 48, 64, 80)
	sdb := newSharded(t, clone(seqs), 4)
	const eps = 0.25
	qs := []*core.Sequence{
		{Label: "q0", Points: seqs[3].Points[8:40]},
		{Label: "q1", Points: seqs[11].Points[0:32]},
		{Label: "q2", Points: seqs[20].Points[16:48]},
	}
	qs = append(qs, qs[1]) // duplicate

	outs, stats, err := sdb.SearchBatch(qs, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(qs) {
		t.Fatalf("batch returned %d result sets for %d queries", len(outs), len(qs))
	}
	for i, q := range qs {
		want, wst, err := sdb.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(matchKeys(t, outs[i]), matchKeys(t, want)) {
			t.Fatalf("query %d: batch answer differs from solo scatter", i)
		}
		if stats[i].QueryMBRs != wst.QueryMBRs || stats[i].ShardsAnswered != sdb.Shards() {
			t.Fatalf("query %d: stats %+v vs solo %+v", i, stats[i], wst)
		}
		if stats[i].Partial {
			t.Fatalf("query %d flagged partial on a healthy scatter", i)
		}
	}
	if !stats[3].CacheHit {
		t.Error("duplicate batch member not flagged as reused")
	}
	if stats[0].CacheHit || stats[1].CacheHit || stats[2].CacheHit {
		t.Error("first occurrence flagged as reused")
	}
}

// TestShardedBatchFrontCache proves the batch path fills and reads the
// front cache, sharing entries with the single-query scatter.
func TestShardedBatchFrontCache(t *testing.T) {
	seqs := corpus(t, 32, 64, 81)
	sdb := newSharded(t, clone(seqs), 4)
	sdb.SetCache(cache.New(cache.Config{}))
	q := &core.Sequence{Label: "query", Points: seqs[5].Points[4:36]}

	if _, st, err := sdb.Search(q, 0.25); err != nil || st.CacheHit {
		t.Fatalf("seed scatter: err=%v hit=%v", err, st.CacheHit)
	}
	_, stats, err := sdb.SearchBatch([]*core.Sequence{q}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !stats[0].CacheHit {
		t.Fatal("batch member missed the front cache after a solo scatter filled it")
	}

	q2 := &core.Sequence{Label: "query2", Points: seqs[9].Points[8:40]}
	if _, _, err := sdb.SearchBatch([]*core.Sequence{q2}, 0.25); err != nil {
		t.Fatal(err)
	}
	if _, st, err := sdb.Search(q2, 0.25); err != nil || !st.CacheHit {
		t.Fatalf("solo scatter after batch fill: err=%v hit=%v, want hit", err, st.CacheHit)
	}
}

// TestShardedBatchPartialDegradesAndIsNotCached: a persistently failing
// shard under AllowPartial degrades every batch member to a flagged
// partial answer — and the moment the shard heals, the full answer comes
// back, proving the partial was never cached.
func TestShardedBatchPartialDegradesAndIsNotCached(t *testing.T) {
	const target = 1
	sdb, q, _ := faultFixture(t, 4, target) // pass-through; faults installed below
	wantPartial := labelsOutsideShard(t, sdb, q, 0.25, target)

	fdb := NewFaultDB(sdb.Shard(target), Fault{Err: errInjected})
	fdb.Cycle = true
	sdb.SetShardBackend(target, fdb)
	sdb.SetPolicy(Policy{AllowPartial: true})
	sdb.SetCache(cache.New(cache.Config{}))

	outs, stats, err := sdb.SearchBatch([]*core.Sequence{q}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !stats[0].Partial || stats[0].ShardsAnswered != 3 {
		t.Fatalf("degraded batch stats = %+v, want Partial from 3 shards", stats[0])
	}
	if !equalStrings(matchLabels(outs[0]), wantPartial) {
		t.Fatalf("partial batch answer = %v, want %v", matchLabels(outs[0]), wantPartial)
	}

	// Heal the shard; the partial answer must not be served from cache.
	sdb.SetShardBackend(target, nil)
	outs, stats, err = sdb.SearchBatch([]*core.Sequence{q}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Partial || stats[0].CacheHit {
		t.Fatalf("healed batch stats = %+v; a cached partial leaked", stats[0])
	}
	if len(outs[0]) <= len(wantPartial) {
		t.Fatalf("healed answer has %d matches, want more than the partial's %d",
			len(outs[0]), len(wantPartial))
	}
}

// TestShardedConcurrentCacheInvalidation interleaves router writes with
// cached scatters and batches: a reader observing c completed adds must
// see at least c copies of the query. Run with -race.
func TestShardedConcurrentCacheInvalidation(t *testing.T) {
	seqs := corpus(t, 16, 48, 82)
	sdb := newSharded(t, clone(seqs), 3)
	sdb.SetCache(cache.New(cache.Config{}))
	q := &core.Sequence{Label: "query", Points: seqs[2].Points[0:32]}

	var added atomic.Int64
	const copies = 10
	var wg sync.WaitGroup
	errs := make(chan error, 16)

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < copies; i++ {
			cp, err := core.NewSequence("copy", append([]geom.Point(nil), q.Points...))
			if err != nil {
				errs <- err
				return
			}
			if _, err := sdb.Add(cp); err != nil {
				errs <- err
				return
			}
			added.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	reader := func(batch bool) {
		defer wg.Done()
		for added.Load() < copies {
			floor := added.Load()
			var ms []core.Match
			var err error
			if batch {
				var outs [][]core.Match
				outs, _, err = sdb.SearchBatch([]*core.Sequence{q}, 0.02)
				if err == nil {
					ms = outs[0]
				}
			} else {
				ms, _, err = sdb.Search(q, 0.02)
			}
			if err != nil {
				errs <- err
				return
			}
			found := int64(0)
			for _, m := range ms {
				if m.Seq.Label == "copy" {
					found++
				}
			}
			if found < floor {
				errs <- errStaleScatter{floor: floor, found: found}
				return
			}
		}
	}
	for g := 0; g < 2; g++ {
		wg.Add(2)
		go reader(false)
		go reader(true)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errStaleScatter struct{ floor, found int64 }

func (e errStaleScatter) Error() string {
	return fmt.Sprintf("stale scatter cache hit: found %d copies, %d adds completed before the search",
		e.found, e.floor)
}
