package shard

// Cache A/B benchmark: the same query workload runs against a sharded
// database with the query cache detached and then attached, measuring
// throughput and the achieved hit ratio. Two workloads bound the
// realistic range: "repeated" cycles a small set of distinct queries
// (the paper's motivating video/image applications re-ask hot queries
// heavily), and "zipf" draws from a skewed popularity distribution over
// a larger pool.
//
// The measurement doubles as the cache acceptance experiment: when
// BENCH_CACHE_OUT is set (CI sets it to BENCH_cache.json) the test
// writes both workloads' numbers as a JSON document.

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
)

const (
	cacheBenchShards  = 4
	cacheBenchCorpus  = 96
	cacheBenchSeqLen  = 64
	cacheBenchQueries = 400
)

// cacheBenchFixture builds the corpus and a pool of n distinct queries
// (windows of stored sequences, so every query does real phase-3 work).
func cacheBenchFixture(t testing.TB, n int) (*ShardedDB, []*core.Sequence) {
	t.Helper()
	seqs := corpus(t, cacheBenchCorpus, cacheBenchSeqLen, 17)
	sdb := newSharded(t, clone(seqs), cacheBenchShards)
	pool := make([]*core.Sequence, n)
	for i := range pool {
		src := seqs[i%len(seqs)]
		off := (i * 3) % (cacheBenchSeqLen - 32)
		pool[i] = &core.Sequence{Label: "q", Points: src.Points[off : off+32]}
	}
	return sdb, pool
}

// runCacheWorkload executes the workload (a sequence of pool indexes)
// and returns the wall time plus how many answers were served from the
// cache, taken from the authoritative per-query CacheHit flag.
func runCacheWorkload(t testing.TB, sdb *ShardedDB, pool []*core.Sequence, workload []int) (time.Duration, int) {
	t.Helper()
	hits := 0
	t0 := time.Now()
	for _, qi := range workload {
		_, st, err := sdb.SearchCtx(context.Background(), pool[qi], 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if st.CacheHit {
			hits++
		}
	}
	return time.Since(t0), hits
}

// cacheWorkloads returns the two measured index streams over a pool of
// the given size: round-robin repetition of a hot set, and Zipf draws.
func cacheWorkloads(distinct int) map[string][]int {
	repeated := make([]int, cacheBenchQueries)
	for i := range repeated {
		repeated[i] = i % 8
	}
	rng := rand.New(rand.NewSource(23))
	z := rand.NewZipf(rng, 1.2, 1, uint64(distinct-1))
	zipf := make([]int, cacheBenchQueries)
	for i := range zipf {
		zipf[i] = int(z.Uint64())
	}
	return map[string][]int{"repeated": repeated, "zipf": zipf}
}

// TestCacheThroughputAB is the acceptance measurement: on the
// repeated-query workload the cached run must be at least 2x the
// uncached throughput at a >= 90% hit ratio (every distinct query can
// miss at most once — there are no writes, so the epoch never moves and
// nothing is evicted). Zipf, with a pool wider than the hot set, must
// still clear >= 85% hits and beat the uncached run. With
// BENCH_CACHE_OUT set the numbers are written as BENCH_cache.json.
func TestCacheThroughputAB(t *testing.T) {
	const distinct = 64
	sdb, pool := cacheBenchFixture(t, distinct)

	type result struct {
		Workload    string  `json:"workload"`
		Queries     int     `json:"queries"`
		Distinct    int     `json:"distinct_queries"`
		UncachedQPS float64 `json:"uncached_qps"`
		CachedQPS   float64 `json:"cached_qps"`
		Speedup     float64 `json:"speedup"`
		HitRatio    float64 `json:"hit_ratio"`
	}
	var results []result
	for _, name := range []string{"repeated", "zipf"} {
		workload := cacheWorkloads(distinct)[name]
		sdb.SetCache(nil)
		durOff, hitsOff := runCacheWorkload(t, sdb, pool, workload)
		if hitsOff != 0 {
			t.Fatalf("%s: %d cache hits with no cache attached", name, hitsOff)
		}
		sdb.SetCache(cache.New(cache.Config{}))
		durOn, hitsOn := runCacheWorkload(t, sdb, pool, workload)

		r := result{
			Workload:    name,
			Queries:     len(workload),
			Distinct:    distinct,
			UncachedQPS: float64(len(workload)) / durOff.Seconds(),
			CachedQPS:   float64(len(workload)) / durOn.Seconds(),
			Speedup:     durOff.Seconds() / durOn.Seconds(),
			HitRatio:    float64(hitsOn) / float64(len(workload)),
		}
		results = append(results, r)
		t.Logf("%s: uncached %.0f q/s, cached %.0f q/s (%.1fx), hit ratio %.3f",
			name, r.UncachedQPS, r.CachedQPS, r.Speedup, r.HitRatio)
	}

	rep, zipf := results[0], results[1]
	if rep.HitRatio < 0.9 {
		t.Errorf("repeated workload hit ratio %.3f < 0.90", rep.HitRatio)
	}
	if rep.Speedup < 2 {
		t.Errorf("repeated workload speedup %.2fx < 2x", rep.Speedup)
	}
	if zipf.HitRatio < 0.85 {
		t.Errorf("zipf workload hit ratio %.3f < 0.85", zipf.HitRatio)
	}
	if zipf.Speedup <= 1 {
		t.Errorf("zipf workload speedup %.2fx: cache made the workload slower", zipf.Speedup)
	}

	if out := os.Getenv("BENCH_CACHE_OUT"); out != "" {
		doc := map[string]any{
			"name":    "query_cache_ab",
			"shards":  cacheBenchShards,
			"corpus":  cacheBenchCorpus,
			"seq_len": cacheBenchSeqLen,
			"results": results,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote %s", out)
	}
}

// BenchmarkCachedSearch reports the same comparison in benchmark form:
// ns/op for a repeated query with the cache detached vs attached.
func BenchmarkCachedSearch(b *testing.B) {
	for _, mode := range []struct {
		name  string
		cache *cache.Cache
	}{
		{"uncached", nil},
		{"cached", cache.New(cache.Config{})},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sdb, pool := cacheBenchFixture(b, 1)
			sdb.SetCache(mode.cache)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sdb.SearchCtx(context.Background(), pool[0], 0.25); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
