package shard

// Cache A/B benchmarks. Three measurements share this file and the
// BENCH_cache.json document (one top-level section each, merged so the
// tests can run independently):
//
//   - query_cache_ab (TestCacheThroughputAB): cache off vs on — the same
//     query workload against a sharded database with the query cache
//     detached and then attached, measuring throughput and hit ratio.
//     Two workloads bound the realistic range: "repeated" cycles a small
//     set of distinct queries (the paper's motivating video/image
//     applications re-ask hot queries heavily) and "zipf" draws from a
//     skewed popularity distribution over a larger pool.
//
//   - policy_ab (TestCachePolicyAB): LRU vs GDSF under a capacity-
//     constrained mix of hot expensive queries and one-off cheap churn.
//     The acceptance metric is hit-weighted CPU saved — the summed
//     CPUTime of the runs that hits avoided redoing — which is what the
//     GDSF cost term optimizes for.
//
//   - scope_ab (TestCacheScopeAB): epoch-flush vs MBR-scoped
//     invalidation under mixed read/write traffic where the writes land
//     far from the queried region. Epoch scope flushes on every write;
//     MBR scope proves the writes harmless and keeps serving.
//
// When BENCH_CACHE_OUT is set (CI sets it to BENCH_cache.json) each test
// writes its section into the shared JSON document.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

const (
	cacheBenchShards  = 4
	cacheBenchCorpus  = 96
	cacheBenchSeqLen  = 64
	cacheBenchQueries = 400
)

// mergeBenchSection upserts one top-level section of the shared
// BENCH_CACHE_OUT document, preserving sections other tests wrote. The
// package's tests run sequentially, so read-modify-write is safe.
func mergeBenchSection(t *testing.T, section string, v any) {
	t.Helper()
	out := os.Getenv("BENCH_CACHE_OUT")
	if out == "" {
		return
	}
	doc := map[string]json.RawMessage{}
	if b, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			doc = map[string]json.RawMessage{} // stale format: start over
		}
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	doc[section] = b
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	t.Logf("wrote section %q to %s", section, out)
}

// cacheBenchFixture builds the corpus and a pool of n distinct queries
// (windows of stored sequences, so every query does real phase-3 work).
func cacheBenchFixture(t testing.TB, n int) (*ShardedDB, []*core.Sequence) {
	t.Helper()
	seqs := corpus(t, cacheBenchCorpus, cacheBenchSeqLen, 17)
	sdb := newSharded(t, clone(seqs), cacheBenchShards)
	pool := make([]*core.Sequence, n)
	for i := range pool {
		src := seqs[i%len(seqs)]
		off := (i * 3) % (cacheBenchSeqLen - 32)
		pool[i] = &core.Sequence{Label: "q", Points: src.Points[off : off+32]}
	}
	return sdb, pool
}

// runCacheWorkload executes the workload (a sequence of pool indexes)
// and returns the wall time plus how many answers were served from the
// cache, taken from the authoritative per-query CacheHit flag.
func runCacheWorkload(t testing.TB, sdb *ShardedDB, pool []*core.Sequence, workload []int) (time.Duration, int) {
	t.Helper()
	hits := 0
	t0 := time.Now()
	for _, qi := range workload {
		_, st, err := sdb.SearchCtx(context.Background(), pool[qi], 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if st.CacheHit {
			hits++
		}
	}
	return time.Since(t0), hits
}

// cacheWorkloads returns the two measured index streams over a pool of
// the given size: round-robin repetition of a hot set, and Zipf draws.
func cacheWorkloads(distinct int) map[string][]int {
	repeated := make([]int, cacheBenchQueries)
	for i := range repeated {
		repeated[i] = i % 8
	}
	rng := rand.New(rand.NewSource(23))
	z := rand.NewZipf(rng, 1.2, 1, uint64(distinct-1))
	zipf := make([]int, cacheBenchQueries)
	for i := range zipf {
		zipf[i] = int(z.Uint64())
	}
	return map[string][]int{"repeated": repeated, "zipf": zipf}
}

// TestCacheThroughputAB is the cache-off/cache-on acceptance
// measurement: on the repeated-query workload the cached run must be at
// least 2x the uncached throughput at a >= 90% hit ratio (every distinct
// query can miss at most once — there are no writes, so nothing is
// invalidated or evicted). Zipf, with a pool wider than the hot set,
// must still clear >= 85% hits and beat the uncached run. With
// BENCH_CACHE_OUT set the numbers land in the query_cache_ab section of
// BENCH_cache.json.
func TestCacheThroughputAB(t *testing.T) {
	const distinct = 64
	sdb, pool := cacheBenchFixture(t, distinct)

	type result struct {
		Workload    string  `json:"workload"`
		Queries     int     `json:"queries"`
		Distinct    int     `json:"distinct_queries"`
		UncachedQPS float64 `json:"uncached_qps"`
		CachedQPS   float64 `json:"cached_qps"`
		Speedup     float64 `json:"speedup"`
		HitRatio    float64 `json:"hit_ratio"`
	}
	var results []result
	for _, name := range []string{"repeated", "zipf"} {
		workload := cacheWorkloads(distinct)[name]
		sdb.SetCache(nil)
		durOff, hitsOff := runCacheWorkload(t, sdb, pool, workload)
		if hitsOff != 0 {
			t.Fatalf("%s: %d cache hits with no cache attached", name, hitsOff)
		}
		sdb.SetCache(cache.New(cache.Config{}))
		durOn, hitsOn := runCacheWorkload(t, sdb, pool, workload)

		r := result{
			Workload:    name,
			Queries:     len(workload),
			Distinct:    distinct,
			UncachedQPS: float64(len(workload)) / durOff.Seconds(),
			CachedQPS:   float64(len(workload)) / durOn.Seconds(),
			Speedup:     durOff.Seconds() / durOn.Seconds(),
			HitRatio:    float64(hitsOn) / float64(len(workload)),
		}
		results = append(results, r)
		t.Logf("%s: uncached %.0f q/s, cached %.0f q/s (%.1fx), hit ratio %.3f",
			name, r.UncachedQPS, r.CachedQPS, r.Speedup, r.HitRatio)
	}

	rep, zipf := results[0], results[1]
	if rep.HitRatio < 0.9 {
		t.Errorf("repeated workload hit ratio %.3f < 0.90", rep.HitRatio)
	}
	if rep.Speedup < 2 {
		t.Errorf("repeated workload speedup %.2fx < 2x", rep.Speedup)
	}
	if zipf.HitRatio < 0.85 {
		t.Errorf("zipf workload hit ratio %.3f < 0.85", zipf.HitRatio)
	}
	if zipf.Speedup <= 1 {
		t.Errorf("zipf workload speedup %.2fx: cache made the workload slower", zipf.Speedup)
	}

	mergeBenchSection(t, "query_cache_ab", map[string]any{
		"shards":  cacheBenchShards,
		"corpus":  cacheBenchCorpus,
		"seq_len": cacheBenchSeqLen,
		"results": results,
	})
}

// policyABWorkload runs the hot+churn mix against sdb. Hot queries are
// kNN — the expensive-compute, tiny-result shape the GDSF cost term is
// built for (every stored sequence gets a lower-bound pass, yet the
// cached value is just k results) — and churn queries are narrow one-off
// range probes. The interleaving re-asks every hot query each round with
// enough fresh churn in between to overflow the cache's entry cap.
func policyABWorkload(t *testing.T, sdb *ShardedDB, hot, churn []*core.Sequence, rounds, churnPerRound int) {
	t.Helper()
	ci := 0
	for r := 0; r < rounds; r++ {
		for _, q := range hot {
			if _, err := sdb.SearchKNN(q, 8); err != nil {
				t.Fatal(err)
			}
		}
		for j := 0; j < churnPerRound; j++ {
			if _, _, err := sdb.SearchCtx(context.Background(), churn[ci], 0.01); err != nil {
				t.Fatal(err)
			}
			ci++
		}
	}
}

// TestCachePolicyAB is the eviction-policy acceptance measurement: under
// a capacity-constrained mix of hot expensive queries and a stream of
// one-off cheap queries, GDSF must beat LRU on hit-weighted CPU saved
// (the mdseq_cache_hit_cost_saved_ns_total counter — the compute the
// hits avoided redoing). The workload is adversarial for recency: each
// round's churn overflows the entry cap, so LRU evicts every hot entry
// between re-asks, while GDSF's cost × frequency priority (and its
// self-evicting admission of cheap newcomers) keeps the expensive
// entries resident. With BENCH_CACHE_OUT set the numbers land in the
// policy_ab section of BENCH_cache.json.
func TestCachePolicyAB(t *testing.T) {
	const (
		hotN          = 4
		rounds        = 10
		churnPerRound = 12
		capEntries    = 8 // < hotN + churnPerRound: every round overflows
	)
	seqs := corpus(t, cacheBenchCorpus, cacheBenchSeqLen, 17)
	sdb := newSharded(t, clone(seqs), cacheBenchShards)

	hot := make([]*core.Sequence, hotN)
	for i := range hot {
		hot[i] = &core.Sequence{Label: "hot", Points: seqs[i].Points[0:32]}
	}
	churn := make([]*core.Sequence, rounds*churnPerRound)
	for i := range churn {
		src := seqs[(i*5)%len(seqs)]
		off := (i * 7) % (cacheBenchSeqLen - 8)
		churn[i] = &core.Sequence{Label: "churn", Points: src.Points[off : off+8]}
	}

	type result struct {
		Policy     string  `json:"policy"`
		Queries    int     `json:"queries"`
		Hits       int     `json:"hits"`
		HitRatio   float64 `json:"hit_ratio"`
		CPUSavedMS float64 `json:"hit_weighted_cpu_saved_ms"`
	}
	total := rounds * (hotN + churnPerRound)
	l := obs.Label{Key: "cache", Value: "front"}
	measure := func(pol cache.Policy) result {
		reg := obs.NewRegistry()
		front := cache.New(cache.Config{MaxEntries: capEntries, Shards: 1, Policy: pol})
		front.SetMetrics(cache.NewMetrics(reg, "front"))
		sdb.SetCache(front)
		policyABWorkload(t, sdb, hot, churn, rounds, churnPerRound)
		hits := int(reg.Counter("mdseq_cache_hits_total", "", l).Value())
		saved := reg.Counter("mdseq_cache_hit_cost_saved_ns_total", "", l).Value()
		return result{
			Policy:     string(pol),
			Queries:    total,
			Hits:       hits,
			HitRatio:   float64(hits) / float64(total),
			CPUSavedMS: float64(saved) / float64(time.Millisecond),
		}
	}
	lru := measure(cache.PolicyLRU)
	gdsf := measure(cache.PolicyGDSF)
	for _, r := range []result{lru, gdsf} {
		t.Logf("%s: %d/%d hits (%.3f), %.2f ms CPU saved",
			r.Policy, r.Hits, r.Queries, r.HitRatio, r.CPUSavedMS)
	}

	if gdsf.CPUSavedMS <= lru.CPUSavedMS {
		t.Errorf("GDSF saved %.2f ms <= LRU's %.2f ms; cost-aware eviction must win on hit-weighted CPU",
			gdsf.CPUSavedMS, lru.CPUSavedMS)
	}
	if gdsf.Hits <= lru.Hits {
		t.Errorf("GDSF hits %d <= LRU hits %d on the churn workload", gdsf.Hits, lru.Hits)
	}

	mergeBenchSection(t, "policy_ab", map[string]any{
		"cache_entries":   capEntries,
		"hot_queries":     hotN,
		"churn_per_round": churnPerRound,
		"rounds":          rounds,
		"results":         []result{lru, gdsf},
	})
}

// clusteredCorpus builds sequences confined to the cube
// [base, base+0.15]³, so reads and writes can be aimed at provably
// disjoint regions of space.
func clusteredCorpus(t *testing.T, n, length int, base float64, seed int64) []*core.Sequence {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seqs := make([]*core.Sequence, n)
	for i := range seqs {
		pts := make([]geom.Point, length)
		cur := [3]float64{base + 0.10*rng.Float64(), base + 0.10*rng.Float64(), base + 0.10*rng.Float64()}
		for j := range pts {
			for k := 0; k < 3; k++ {
				cur[k] += (rng.Float64() - 0.5) * 0.02
				if cur[k] < base {
					cur[k] = base
				}
				if cur[k] > base+0.15 {
					cur[k] = base + 0.15
				}
			}
			pts[j] = geom.Point{cur[0], cur[1], cur[2]}
		}
		s, err := core.NewSequence(fmt.Sprintf("c%.1f-%03d", base, i), pts)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = s
	}
	return seqs
}

// TestCacheScopeAB is the invalidation-scope acceptance measurement:
// under mixed read/write traffic where the queries probe one spatial
// cluster and the writes land in another, the MBR-scoped cache must
// sustain a hit ratio strictly above the epoch-flush baseline. The
// epoch-scoped run flushes the whole cache on every write (a write lands
// between every repeat of a query here, so it barely hits at all); the
// MBR-scoped run proves each write cannot reach any cached query's
// region and keeps serving. With BENCH_CACHE_OUT set the numbers land in
// the scope_ab section of BENCH_cache.json.
func TestCacheScopeAB(t *testing.T) {
	const (
		queries      = 200
		poolN        = 8
		writeEvery   = 4
		eps          = 0.05
		corpusN      = 48
		corpusSeqLen = 32
	)
	// Corpus and queries live in [0, 0.15]³; writes land in [0.8, 0.95]³,
	// over 1.0 away — far beyond ε, so no write can change any answer.
	reads := clusteredCorpus(t, corpusN, corpusSeqLen, 0, 41)
	pool := make([]*core.Sequence, poolN)
	for i := range pool {
		pool[i] = &core.Sequence{Label: "q", Points: reads[i].Points[4:20]}
	}

	type result struct {
		Scope    string  `json:"scope"`
		Queries  int     `json:"queries"`
		Writes   int     `json:"writes"`
		Hits     int     `json:"hits"`
		HitRatio float64 `json:"hit_ratio"`
	}
	measure := func(scope cache.Scope) result {
		sdb := newSharded(t, clone(reads), cacheBenchShards)
		sdb.SetCache(cache.New(cache.Config{Scope: scope}))
		writes := clusteredCorpus(t, queries/writeEvery+1, corpusSeqLen, 0.8, 43)
		hits, wrote := 0, 0
		for i := 0; i < queries; i++ {
			_, st, err := sdb.SearchCtx(context.Background(), pool[i%poolN], eps)
			if err != nil {
				t.Fatal(err)
			}
			if st.CacheHit {
				hits++
			}
			if i%writeEvery == writeEvery-1 {
				if _, err := sdb.Add(writes[wrote]); err != nil {
					t.Fatal(err)
				}
				wrote++
			}
		}
		return result{
			Scope:    string(scope),
			Queries:  queries,
			Writes:   wrote,
			Hits:     hits,
			HitRatio: float64(hits) / float64(queries),
		}
	}
	epoch := measure(cache.ScopeEpoch)
	mbr := measure(cache.ScopeMBR)
	for _, r := range []result{epoch, mbr} {
		t.Logf("%s: %d/%d hits (%.3f) across %d interleaved writes",
			r.Scope, r.Hits, r.Queries, r.HitRatio, r.Writes)
	}

	if mbr.HitRatio <= epoch.HitRatio {
		t.Errorf("mbr hit ratio %.3f <= epoch baseline %.3f; region scoping must retain hits through disjoint writes",
			mbr.HitRatio, epoch.HitRatio)
	}
	if mbr.HitRatio < 0.9 {
		t.Errorf("mbr hit ratio %.3f < 0.90: disjoint writes should invalidate nothing", mbr.HitRatio)
	}

	mergeBenchSection(t, "scope_ab", map[string]any{
		"shards":      cacheBenchShards,
		"corpus":      corpusN,
		"write_every": writeEvery,
		"eps":         eps,
		"results":     []result{epoch, mbr},
	})
}

// BenchmarkCachedSearch reports the same comparison in benchmark form:
// ns/op for a repeated query with the cache detached vs attached.
func BenchmarkCachedSearch(b *testing.B) {
	for _, mode := range []struct {
		name  string
		cache *cache.Cache
	}{
		{"uncached", nil},
		{"cached", cache.New(cache.Config{})},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sdb, pool := cacheBenchFixture(b, 1)
			sdb.SetCache(mode.cache)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := sdb.SearchCtx(context.Background(), pool[0], 0.25); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
