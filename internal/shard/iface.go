package shard

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

// DB is the database surface the serving layers (internal/server,
// internal/cli, cmd/*) program against. Both the single-node
// *core.Database and the scatter-gather *ShardedDB satisfy it, so a
// deployment picks its topology with a flag, not a code path. Later
// scale work (remote shards, replicas) slots in behind the same
// interface.
type DB interface {
	// Writes.
	Add(*core.Sequence) (uint32, error)
	AddAll([]*core.Sequence) ([]uint32, error)
	Remove(uint32) error
	AppendPoints(uint32, []geom.Point) error

	// Lookups.
	Segmented(uint32) *core.Segmented
	Sequences() []*core.Sequence

	// Queries.
	Search(*core.Sequence, float64) ([]core.Match, core.SearchStats, error)
	SearchParallel(*core.Sequence, float64, int) ([]core.Match, core.SearchStats, error)
	SearchKNN(*core.Sequence, int) ([]core.KNNResult, error)
	SequentialSearch(*core.Sequence, float64) ([]core.ScanResult, error)
	Explain(*core.Sequence, float64) (*core.Explanation, error)

	// Shape.
	Len() int
	NumMBRs() int
	IndexHeight() int
	IndexFanout() int
	Shards() int
	Dim() int

	// Observability: record query/ingest activity into a metrics
	// registry (nil detaches). On a ShardedDB only the scatter-gather
	// layer records, so a query counts once regardless of shard count.
	SetMetrics(*obs.Registry)

	// Lifecycle.
	Flush() error
	Close() error
}

var (
	_ DB = (*core.Database)(nil)
	_ DB = (*ShardedDB)(nil)
)
