package shard

import (
	"context"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

// DB is the database surface the serving layers (internal/server,
// internal/cli, cmd/*) program against. Both the single-node
// *core.Database and the scatter-gather *ShardedDB satisfy it, so a
// deployment picks its topology with a flag, not a code path. Later
// scale work (remote shards, replicas) slots in behind the same
// interface.
type DB interface {
	// Add stores one sequence and returns its id.
	Add(*core.Sequence) (uint32, error)
	// AddAll bulk-loads sequences and returns their ids in input order.
	AddAll([]*core.Sequence) ([]uint32, error)
	// Remove deletes the sequence with the given id.
	Remove(uint32) error
	// AppendPoints extends a stored sequence with more points.
	AppendPoints(uint32, []geom.Point) error

	// Segmented returns a stored sequence with its MBR partitioning, or
	// nil if the id is unknown.
	Segmented(uint32) *core.Segmented
	// Sequences lists every live sequence.
	Sequences() []*core.Sequence

	// Search runs the three-phase range search: sequences within eps of
	// the query, with their solution intervals. The Ctx variants below
	// honor a caller deadline or cancellation — the serving layer always
	// uses them with the request context, so a dead client or an expired
	// query budget stops the work. On a ShardedDB they additionally run
	// under the fault-tolerance Policy (per-shard timeout, retry,
	// hedging, partial results).
	Search(*core.Sequence, float64) ([]core.Match, core.SearchStats, error)
	// SearchCtx is Search bounded by the context's deadline/cancellation.
	SearchCtx(context.Context, *core.Sequence, float64) ([]core.Match, core.SearchStats, error)
	// SearchParallel is Search with phase 3 refined by that many workers.
	SearchParallel(*core.Sequence, float64, int) ([]core.Match, core.SearchStats, error)
	// SearchParallelCtx is SearchParallel bounded by the context — the
	// serving layer's parallel path, so a dead client stops the workers.
	SearchParallelCtx(context.Context, *core.Sequence, float64, int) ([]core.Match, core.SearchStats, error)
	// SearchBatch answers several range queries in one pass, one result
	// set and stats value per query, in input order.
	SearchBatch([]*core.Sequence, float64) ([][]core.Match, []core.SearchStats, error)
	// SearchBatchCtx is SearchBatch bounded by the context.
	SearchBatchCtx(context.Context, []*core.Sequence, float64) ([][]core.Match, []core.SearchStats, error)
	// SearchKNN returns the k sequences nearest the query by MinDnorm.
	SearchKNN(*core.Sequence, int) ([]core.KNNResult, error)
	// SearchKNNCtx is SearchKNN bounded by the context.
	SearchKNNCtx(context.Context, *core.Sequence, int) ([]core.KNNResult, error)
	// SearchMetric is the exact-metric range search: sequences whose
	// metric distance (D, or DTW under a Sakoe–Chiba window) is within
	// eps, served through the index with the metric's lower bounds so the
	// result equals an exhaustive scan under the same metric.
	SearchMetric(*core.Sequence, float64, core.Metric) ([]core.MetricMatch, core.SearchStats, error)
	// SearchMetricCtx is SearchMetric bounded by the context.
	SearchMetricCtx(context.Context, *core.Sequence, float64, core.Metric) ([]core.MetricMatch, core.SearchStats, error)
	// SearchKNNMetric returns the k sequences nearest the query under the
	// metric's exact distance.
	SearchKNNMetric(*core.Sequence, int, core.Metric) ([]core.KNNResult, error)
	// SearchKNNMetricCtx is SearchKNNMetric bounded by the context.
	SearchKNNMetricCtx(context.Context, *core.Sequence, int, core.Metric) ([]core.KNNResult, error)
	// SequentialSearchMetric is the exhaustive exact-metric baseline the
	// indexed metric search must match byte for byte.
	SequentialSearchMetric(*core.Sequence, float64, core.Metric) ([]core.MetricMatch, error)
	// SequentialSearch is the exact linear-scan baseline.
	SequentialSearch(*core.Sequence, float64) ([]core.ScanResult, error)
	// Explain records every pruning decision a search makes.
	Explain(*core.Sequence, float64) (*core.Explanation, error)

	// Len reports the number of live sequences.
	Len() int
	// NumMBRs reports the number of indexed MBRs across all sequences.
	NumMBRs() int
	// IndexHeight reports the R*-tree height (max across shards).
	IndexHeight() int
	// IndexFanout reports the R*-tree node fan-out.
	IndexFanout() int
	// Shards reports the shard count (1 for a single-node database).
	Shards() int
	// Dim reports the point dimensionality.
	Dim() int

	// SetMetrics records query/ingest activity into a metrics registry
	// (nil detaches). On a ShardedDB only the scatter-gather layer
	// records, so a query counts once regardless of shard count.
	SetMetrics(*obs.Registry)

	// SetCache attaches an epoch-invalidated query-result cache (nil
	// detaches). Every write invalidates all prior entries; partial
	// results are never cached. On a ShardedDB the budget covers a
	// merged-result cache in front of the scatter plus per-shard caches.
	SetCache(*cache.Cache)
	// QueryCache returns the attached cache (the front cache on a
	// ShardedDB), or nil.
	QueryCache() *cache.Cache
	// Epoch returns the write epoch cached results are validated against.
	Epoch() uint64

	// Flush persists index pages to the backing file, if any.
	Flush() error
	// Close releases the database (flushing pager/WAL state first).
	Close() error
}

var (
	_ DB = (*core.Database)(nil)
	_ DB = (*ShardedDB)(nil)
)
