package shard

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/fractal"
	"repro/internal/geom"
)

// corpus generates n labeled fractal sequences with a fixed seed.
func corpus(t testing.TB, n, length int, seed int64) []*core.Sequence {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seqs := make([]*core.Sequence, n)
	for i := range seqs {
		s, err := fractal.Generate(rng, length, fractal.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.Label = fmt.Sprintf("seq-%03d", i)
		seqs[i] = s
	}
	return seqs
}

// clone deep-copies a corpus so two databases never share point storage.
func clone(seqs []*core.Sequence) []*core.Sequence {
	out := make([]*core.Sequence, len(seqs))
	for i, s := range seqs {
		out[i] = s.Clone()
	}
	return out
}

func newSingle(t testing.TB, seqs []*core.Sequence) *core.Database {
	t.Helper()
	db, err := core.NewDatabase(core.Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.AddAll(seqs); err != nil {
		t.Fatal(err)
	}
	return db
}

func newSharded(t testing.TB, seqs []*core.Sequence, n int) *ShardedDB {
	t.Helper()
	sdb, err := New(core.Options{Dim: 3}, n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	if _, err := sdb.AddAll(seqs); err != nil {
		t.Fatal(err)
	}
	return sdb
}

// matchKey is a topology-independent view of one match: label plus the
// distance bound and interval, which depend only on the sequence itself.
type matchKey struct {
	label    string
	minDnorm float64
	interval string
}

func matchKeys(t *testing.T, ms []core.Match) []matchKey {
	t.Helper()
	out := make([]matchKey, len(ms))
	for i, m := range ms {
		out[i] = matchKey{label: m.Seq.Label, minDnorm: m.MinDnorm, interval: m.Interval.String()}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].label < out[b].label })
	return out
}

func TestShardForStable(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16} {
		for _, label := range []string{"", "a", "seq-001", "video/clip-42"} {
			got := ShardFor(label, n)
			if got < 0 || got >= n {
				t.Fatalf("ShardFor(%q, %d) = %d out of range", label, n, got)
			}
			if again := ShardFor(label, n); again != got {
				t.Fatalf("ShardFor(%q, %d) unstable: %d then %d", label, n, got, again)
			}
		}
	}
	if ShardFor("anything", 1) != 0 {
		t.Fatal("single shard must receive everything")
	}
}

func TestNewRejectsBadShardCount(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := New(core.Options{Dim: 3}, n); err == nil {
			t.Fatalf("New with %d shards: want error", n)
		}
	}
}

// TestShardedSearchMatchesSingleNode is the tentpole cross-check: the
// scatter-gather range search must return exactly the single-node match
// set (modulo id assignment) on an identical corpus.
func TestShardedSearchMatchesSingleNode(t *testing.T) {
	seqs := corpus(t, 60, 96, 1)
	single := newSingle(t, clone(seqs))
	for _, n := range []int{1, 2, 3, 8} {
		sdb := newSharded(t, clone(seqs), n)
		for qi, eps := range map[int]float64{3: 0.1, 17: 0.2, 41: 0.35} {
			q := &core.Sequence{Label: "query", Points: seqs[qi].Points[10:42]}
			want, _, err := single.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := sdb.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(matchKeys(t, got), matchKeys(t, want)) {
				t.Fatalf("shards=%d query %d eps=%.2f: sharded matches differ\n got %v\nwant %v",
					n, qi, eps, matchKeys(t, got), matchKeys(t, want))
			}
			if st.TotalSequences != 60 {
				t.Fatalf("merged TotalSequences = %d, want 60", st.TotalSequences)
			}
			// Ascending global id order, like the single-node contract.
			for i := 1; i < len(got); i++ {
				if got[i-1].SeqID >= got[i].SeqID {
					t.Fatalf("shards=%d: results not in ascending id order", n)
				}
			}
			// SearchParallel must agree exactly.
			par, _, err := sdb.SearchParallel(q, eps, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(matchKeys(t, par), matchKeys(t, got)) {
				t.Fatalf("shards=%d: SearchParallel diverges from Search", n)
			}
		}
	}
}

func TestShardedSearchShardsStats(t *testing.T) {
	seqs := corpus(t, 40, 64, 2)
	sdb := newSharded(t, clone(seqs), 4)
	q := &core.Sequence{Label: "query", Points: seqs[5].Points[:24]}
	_, merged, per, err := sdb.SearchShards(q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 4 {
		t.Fatalf("got %d per-shard stats, want 4", len(per))
	}
	sumSeqs, sumCands := 0, 0
	for i, ps := range per {
		if ps.Shard != i {
			t.Fatalf("per-shard stats out of order: %d at %d", ps.Shard, i)
		}
		sumSeqs += ps.Stats.TotalSequences
		sumCands += ps.Stats.CandidatesDmbr
	}
	if sumSeqs != merged.TotalSequences || sumCands != merged.CandidatesDmbr {
		t.Fatalf("merged stats (%d seqs, %d cands) disagree with per-shard sums (%d, %d)",
			merged.TotalSequences, merged.CandidatesDmbr, sumSeqs, sumCands)
	}
}

func TestShardedKNNMatchesSingleNode(t *testing.T) {
	seqs := corpus(t, 50, 80, 3)
	single := newSingle(t, clone(seqs))
	for _, n := range []int{1, 3, 8} {
		sdb := newSharded(t, clone(seqs), n)
		for _, k := range []int{1, 5, 12, 50, 80} {
			q := &core.Sequence{Label: "query", Points: seqs[7].Points[5:35]}
			want, err := single.SearchKNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sdb.SearchKNN(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("shards=%d k=%d: %d results, want %d", n, k, len(got), len(want))
			}
			for i := range got {
				if got[i].Seq.Label != want[i].Seq.Label ||
					math.Abs(got[i].Dist-want[i].Dist) > 1e-12 ||
					got[i].Offset != want[i].Offset {
					t.Fatalf("shards=%d k=%d result %d: got (%s, %g, %d), want (%s, %g, %d)",
						n, k, i, got[i].Seq.Label, got[i].Dist, got[i].Offset,
						want[i].Seq.Label, want[i].Dist, want[i].Offset)
				}
				if i > 0 && got[i].Dist < got[i-1].Dist {
					t.Fatalf("shards=%d: kNN results not sorted", n)
				}
			}
		}
	}
}

func TestSearchKNNBoundedPrunes(t *testing.T) {
	seqs := corpus(t, 30, 64, 4)
	single := newSingle(t, clone(seqs))
	q := &core.Sequence{Label: "query", Points: seqs[2].Points[:20]}
	full, err := single.SearchKNN(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 3 {
		t.Fatalf("need at least 3 neighbors, got %d", len(full))
	}
	bound := full[2].Dist
	bounded, err := single.SearchKNNBounded(q, 10, bound)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range bounded {
		if r.Dist > bound {
			t.Fatalf("bounded kNN returned dist %g > bound %g", r.Dist, bound)
		}
	}
	// Everything within the bound must still be there (no false dismissal).
	want := 0
	for _, r := range full {
		if r.Dist <= bound {
			want++
		}
	}
	if len(bounded) != want {
		t.Fatalf("bounded kNN returned %d results, want %d within bound", len(bounded), want)
	}
}

func TestShardedRemoveAndAppend(t *testing.T) {
	seqs := corpus(t, 24, 48, 5)
	sdb := newSharded(t, clone(seqs), 3)
	ids, err := func() ([]uint32, error) {
		out := make([]uint32, 0, sdb.Len())
		for _, s := range sdb.Sequences() {
			out = append(out, s.ID)
		}
		return out, nil
	}()
	if err != nil {
		t.Fatal(err)
	}

	// Remove a third of the corpus by global id.
	removedLabels := map[string]bool{}
	for i, id := range ids {
		if i%3 != 0 {
			continue
		}
		removedLabels[sdb.Segmented(id).Seq.Label] = true
		if err := sdb.Remove(id); err != nil {
			t.Fatal(err)
		}
		if g := sdb.Segmented(id); g != nil {
			t.Fatalf("sequence %d still visible after Remove", id)
		}
	}
	if err := sdb.Remove(ids[0]); err == nil {
		t.Fatal("double Remove: want error")
	}
	if sdb.Len() != 24-len(removedLabels) {
		t.Fatalf("Len = %d after removing %d", sdb.Len(), len(removedLabels))
	}

	// Append points to a survivor and confirm it still matches itself.
	var surv uint32
	for _, s := range sdb.Sequences() {
		surv = s.ID
		break
	}
	before := sdb.Segmented(surv).Seq.Len()
	extra := make([]geom.Point, 8)
	for i := range extra {
		extra[i] = geom.Point{0.5, 0.5, 0.5}
	}
	if err := sdb.AppendPoints(surv, extra); err != nil {
		t.Fatal(err)
	}
	if got := sdb.Segmented(surv).Seq.Len(); got != before+8 {
		t.Fatalf("appended length %d, want %d", got, before+8)
	}

	// The sharded database must now agree with a single-node database
	// built from its own surviving corpus.
	single := newSingle(t, clone(sdb.Sequences()))
	q := &core.Sequence{Label: "query", Points: seqs[1].Points[:16]}
	want, _, err := single.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sdb.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(matchKeys(t, got), matchKeys(t, want)) {
		t.Fatalf("after remove+append, sharded diverges from single-node:\n got %v\nwant %v",
			matchKeys(t, got), matchKeys(t, want))
	}
	for l := range removedLabels {
		for _, m := range got {
			if m.Seq.Label == l {
				t.Fatalf("removed sequence %q still matching", l)
			}
		}
	}
}

func TestShardedEmptyShards(t *testing.T) {
	// 2 sequences over 8 shards: most shards stay empty and must not
	// break search, kNN, or stats.
	seqs := corpus(t, 2, 40, 6)
	sdb := newSharded(t, clone(seqs), 8)
	if sdb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", sdb.Len())
	}
	q := &core.Sequence{Label: "query", Points: seqs[0].Points[:16]}
	if _, _, err := sdb.Search(q, 0.2); err != nil {
		t.Fatal(err)
	}
	nn, err := sdb.SearchKNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 2 {
		t.Fatalf("kNN over 2 sequences returned %d", len(nn))
	}
	lens := sdb.ShardLens()
	total := 0
	for _, l := range lens {
		total += l
	}
	if total != 2 {
		t.Fatalf("ShardLens sum %d, want 2", total)
	}
}

func TestShardedIDRoundTrip(t *testing.T) {
	sdb, err := New(core.Options{Dim: 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	for sh := 0; sh < 5; sh++ {
		for local := uint32(0); local < 100; local += 7 {
			g := sdb.globalID(sh, local)
			gotSh, gotLocal := sdb.SplitID(g)
			if gotSh != sh || gotLocal != local {
				t.Fatalf("id round trip (%d,%d) -> %d -> (%d,%d)", sh, local, g, gotSh, gotLocal)
			}
		}
	}
}

func TestShardedExplainCoversCorpus(t *testing.T) {
	seqs := corpus(t, 20, 48, 7)
	sdb := newSharded(t, clone(seqs), 4)
	q := &core.Sequence{Label: "query", Points: seqs[0].Points[:16]}
	ex, err := sdb.Explain(q, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Candidates) != 20 {
		t.Fatalf("Explain covered %d sequences, want 20", len(ex.Candidates))
	}
	for i := 1; i < len(ex.Candidates); i++ {
		if ex.Candidates[i-1].SeqID >= ex.Candidates[i].SeqID {
			t.Fatal("Explain candidates not sorted by global id")
		}
	}
}
