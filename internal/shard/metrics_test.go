package shard

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

// instrumentedSharded builds a 4-shard database with metrics wired and a
// corpus spread across shards (distinct labels hash to different shards).
func instrumentedSharded(t *testing.T, reg *obs.Registry, n int) (*ShardedDB, *core.Sequence) {
	t.Helper()
	s, err := New(core.Options{Dim: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	s.SetMetrics(reg)
	rng := rand.New(rand.NewSource(7))
	var first *core.Sequence
	for i := 0; i < n; i++ {
		pts := make([]geom.Point, 60)
		x, y := rng.Float64(), rng.Float64()
		for j := range pts {
			x += (rng.Float64() - 0.5) * 0.04
			y += (rng.Float64() - 0.5) * 0.04
			pts[j] = geom.Point{x, y}
		}
		seq, err := core.NewSequence(fmt.Sprintf("seq-%d", i), pts)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = seq
		}
		if _, err := s.Add(seq); err != nil {
			t.Fatal(err)
		}
	}
	return s, first
}

// TestScatterRecordsShardMetrics checks the scatter-gather observables:
// one scatter advances the shared search families once (not once per
// shard), every shard's fan-out series gets an observation, and the
// straggler gap is recorded.
func TestScatterRecordsShardMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, first := instrumentedSharded(t, reg, 16)

	q := &core.Sequence{Label: "q", Points: first.Points[:15]}
	_, st, err := s.Search(q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("mdseq_search_total", "").Value(); got != 1 {
		t.Fatalf("mdseq_search_total = %d, want 1 (scatter must count once)", got)
	}
	if got := reg.Counter("mdseq_shard_scatter_total", "").Value(); got != 1 {
		t.Fatalf("scatter_total = %d, want 1", got)
	}
	for i := 0; i < 4; i++ {
		h := reg.Histogram("mdseq_shard_search_seconds", "", nil, core.ShardLabel(i))
		if h.Count() != 1 {
			t.Fatalf("shard %d fan-out histogram count = %d, want 1", i, h.Count())
		}
	}
	if got := reg.Histogram("mdseq_shard_straggler_gap_seconds", "", nil).Count(); got != 1 {
		t.Fatalf("straggler histogram count = %d, want 1", got)
	}
	// Merged CPUTime sums across shards; wall-clock phases take the max,
	// so CPUTime can never be smaller.
	if st.CPUTime < st.Total() {
		t.Fatalf("merged CPUTime %v < Total %v", st.CPUTime, st.Total())
	}
}

// TestMergeStatsWallVsCPU pins the documented semantics directly.
func TestMergeStatsWallVsCPU(t *testing.T) {
	var merged core.SearchStats
	a := core.SearchStats{Phase1: 1 * time.Millisecond, Phase2: 4 * time.Millisecond,
		Phase3: 2 * time.Millisecond, CandidatesDmbr: 3, TotalSequences: 10}
	a.CPUTime = a.Total()
	b := core.SearchStats{Phase1: 2 * time.Millisecond, Phase2: 1 * time.Millisecond,
		Phase3: 5 * time.Millisecond, CandidatesDmbr: 4, TotalSequences: 12}
	b.CPUTime = b.Total()
	mergeStats(&merged, a)
	mergeStats(&merged, b)
	if merged.Phase1 != 2*time.Millisecond || merged.Phase2 != 4*time.Millisecond || merged.Phase3 != 5*time.Millisecond {
		t.Fatalf("phases must take per-phase max, got %v/%v/%v", merged.Phase1, merged.Phase2, merged.Phase3)
	}
	if want := a.CPUTime + b.CPUTime; merged.CPUTime != want {
		t.Fatalf("CPUTime must sum: got %v, want %v", merged.CPUTime, want)
	}
	if merged.Total() != 11*time.Millisecond {
		t.Fatalf("merged Total = %v, want 11ms (sum of per-phase maxima)", merged.Total())
	}
	if merged.CandidatesDmbr != 7 || merged.TotalSequences != 22 {
		t.Fatalf("counters must sum: %+v", merged)
	}
}

// TestMergeStatsPartialMerge pins the stats semantics of a k-of-n gather:
// the merge folds only the answered shards — sums and maxima cover the
// answered set and nothing else — while the Partial / ShardsAnswered
// markers are the gather loop's job, never mergeStats'.
func TestMergeStatsPartialMerge(t *testing.T) {
	shardStats := []core.SearchStats{
		{Phase1: 1 * time.Millisecond, Phase2: 2 * time.Millisecond, Phase3: 3 * time.Millisecond,
			CandidatesDmbr: 5, MatchesDnorm: 2, TotalSequences: 10, DnormEvals: 5, IndexEntriesHit: 7},
		{Phase1: 4 * time.Millisecond, Phase2: 1 * time.Millisecond, Phase3: 6 * time.Millisecond,
			CandidatesDmbr: 3, MatchesDnorm: 1, TotalSequences: 11, DnormEvals: 3, IndexEntriesHit: 9},
		// Shard 2 never answered: under AllowPartial its stats are simply
		// absent from the merge.
		{Phase1: 100 * time.Millisecond, Phase2: 100 * time.Millisecond, Phase3: 100 * time.Millisecond,
			CandidatesDmbr: 99, TotalSequences: 99},
	}
	for i := range shardStats {
		shardStats[i].CPUTime = shardStats[i].Total()
	}
	answered := shardStats[:2] // 2 of 3 shards

	var merged core.SearchStats
	for _, st := range answered {
		mergeStats(&merged, st)
	}
	// Wall phases: max over answered shards only — the missing shard's
	// (larger) timings must not leak in.
	if merged.Phase1 != 4*time.Millisecond || merged.Phase2 != 2*time.Millisecond || merged.Phase3 != 6*time.Millisecond {
		t.Fatalf("partial merge phases = %v/%v/%v, want maxima over answered shards only",
			merged.Phase1, merged.Phase2, merged.Phase3)
	}
	// CPUTime: sum over answered shards only.
	if want := answered[0].CPUTime + answered[1].CPUTime; merged.CPUTime != want {
		t.Fatalf("partial merge CPUTime = %v, want %v (answered shards only)", merged.CPUTime, want)
	}
	if merged.TotalSequences != 21 || merged.CandidatesDmbr != 8 || merged.MatchesDnorm != 3 {
		t.Fatalf("partial merge counters leak the missing shard: %+v", merged)
	}
	// mergeStats itself never claims completeness either way; the gather
	// loop stamps these after it knows how many shards answered.
	if merged.Partial || merged.ShardsAnswered != 0 {
		t.Fatalf("mergeStats must not stamp Partial/ShardsAnswered, got %v/%d",
			merged.Partial, merged.ShardsAnswered)
	}
}

// TestPartialMergeEndToEndStats drives a real 2-of-4 partial gather and
// checks the merged stats describe exactly the answered shards' work.
func TestPartialMergeEndToEndStats(t *testing.T) {
	seqs := corpus(t, 40, 64, 21)
	sdb := newSharded(t, clone(seqs), 4)
	q := &core.Sequence{Label: "q", Points: seqs[2].Points[4:36]}

	// Per-shard corpus sizes, taken directly from the shards that will
	// survive; timings vary run to run, so only structure is compared.
	var wantSeqs int
	for _, i := range []int{1, 2} {
		_, st, err := sdb.Shard(i).Search(q, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		wantSeqs += st.TotalSequences
	}
	for _, i := range []int{0, 3} {
		f := NewFaultDB(sdb.Shard(i), Fault{Err: errInjected})
		f.Cycle = true
		sdb.SetShardBackend(i, f)
	}
	sdb.SetPolicy(Policy{AllowPartial: true})

	_, st, per, err := sdb.SearchShardsCtx(context.Background(), q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Partial || st.ShardsAnswered != 2 || len(per) != 2 {
		t.Fatalf("want 2-of-4 partial, got partial=%v answered=%d per=%d",
			st.Partial, st.ShardsAnswered, len(per))
	}
	if st.TotalSequences != wantSeqs {
		t.Fatalf("partial TotalSequences = %d, want %d (answered shards' corpora only)",
			st.TotalSequences, wantSeqs)
	}
	var perCPU time.Duration
	for _, ps := range per {
		if ps.Shard == 0 || ps.Shard == 3 {
			t.Fatalf("faulted shard %d appears in answered stats", ps.Shard)
		}
		perCPU += ps.Stats.CPUTime
	}
	if st.CPUTime != perCPU {
		t.Fatalf("merged CPUTime %v != sum of answered shards' CPUTime %v", st.CPUTime, perCPU)
	}
}

// TestShardedKNNSeedCounters checks that every shard launch lands in
// exactly one of the seeded/unseeded counters.
func TestShardedKNNSeedCounters(t *testing.T) {
	reg := obs.NewRegistry()
	s, first := instrumentedSharded(t, reg, 16)
	q := &core.Sequence{Label: "q", Points: first.Points[:15]}
	if _, err := s.SearchKNN(q, 3); err != nil {
		t.Fatal(err)
	}
	seeded := reg.Counter("mdseq_shard_knn_seeded_total", "").Value()
	unseeded := reg.Counter("mdseq_shard_knn_unseeded_total", "").Value()
	if seeded+unseeded != 4 {
		t.Fatalf("seeded %d + unseeded %d != 4 shard launches", seeded, unseeded)
	}
	if got := reg.Counter("mdseq_knn_total", "").Value(); got != 1 {
		t.Fatalf("knn_total = %d, want 1", got)
	}
}

// TestShardedExpositionHasPerShardSeries renders the registry and checks
// the per-shard label survives encoding.
func TestShardedExpositionHasPerShardSeries(t *testing.T) {
	reg := obs.NewRegistry()
	s, first := instrumentedSharded(t, reg, 8)
	q := &core.Sequence{Label: "q", Points: first.Points[:15]}
	if _, _, err := s.Search(q, 0.25); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`mdseq_shard_search_seconds_count{shard="0"} 1`,
		`mdseq_shard_search_seconds_count{shard="3"} 1`,
		"# TYPE mdseq_shard_straggler_gap_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
