package shard

// Deterministic fault-injection tests for the robust scatter-gather path:
// every test wires a FaultDB as one shard's query backend and proves a
// Policy mechanism end to end — deadlines actually bound hung shards,
// retries actually re-run, hedges actually race and cancel their loser,
// and partial results are exactly the answered shards' answers, flagged.
// The CI workflow runs this file with -race -count=2 (go test -run
// TestFault ./internal/shard/...).

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

var errInjected = errors.New("injected shard failure")

// faultFixture builds an n-shard database with a corpus that populates
// every shard, returns a query matching several sequences, and installs
// a FaultDB in front of the target shard's query path.
func faultFixture(t *testing.T, n, target int, script ...Fault) (*ShardedDB, *core.Sequence, *FaultDB) {
	t.Helper()
	seqs := corpus(t, 48, 64, 42)
	sdb := newSharded(t, clone(seqs), n)
	q := &core.Sequence{Label: "query", Points: seqs[3].Points[8:40]}
	fdb := NewFaultDB(sdb.Shard(target), script...)
	sdb.SetShardBackend(target, fdb)
	return sdb, q, fdb
}

// labelsOutsideShard returns the sorted labels of the unfaulted full
// answer set, keeping only matches stored outside the given shard — the
// exact answer a partial result excluding that shard must produce.
func labelsOutsideShard(t *testing.T, sdb *ShardedDB, q *core.Sequence, eps float64, exclude int) []string {
	t.Helper()
	full, _, err := sdb.Search(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, m := range full {
		if sh, _ := sdb.SplitID(m.SeqID); sh != exclude {
			out = append(out, m.Seq.Label)
		}
	}
	sort.Strings(out)
	return out
}

func matchLabels(ms []core.Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Seq.Label
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// waitFor polls until cond holds or the deadline passes — used for
// observations that become true asynchronously (a canceled hang
// unblocking in its own goroutine).
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFaultHungShardRespectsShardTimeout: a wedged shard cannot stall the
// query — the per-attempt deadline fires, the error surfaces as
// context.DeadlineExceeded, and the hung call is reclaimed through its
// canceled context.
func TestFaultHungShardRespectsShardTimeout(t *testing.T) {
	sdb, q, fdb := faultFixture(t, 4, 1, Fault{Hang: true})
	sdb.SetPolicy(Policy{ShardTimeout: 50 * time.Millisecond})

	t0 := time.Now()
	_, _, err := sdb.Search(q, 0.25)
	took := time.Since(t0)
	if err == nil {
		t.Fatal("hung shard: want error, got success")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung shard error = %v, want context.DeadlineExceeded", err)
	}
	if took > 5*time.Second {
		t.Fatalf("query took %v despite 50ms shard timeout", took)
	}
	waitFor(t, 2*time.Second, func() bool { return fdb.Released() == 1 },
		"hung call released by its canceled context")
}

// TestFaultHungShardRespectsCallerDeadline: with no per-shard timeout at
// all, the caller's own context deadline still propagates into the shard
// call and unhangs it — deadline propagation end to end.
func TestFaultHungShardRespectsCallerDeadline(t *testing.T) {
	sdb, q, fdb := faultFixture(t, 4, 2, Fault{Hang: true})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	t0 := time.Now()
	_, _, err := sdb.SearchCtx(ctx, q, 0.25)
	if err == nil {
		t.Fatal("hung shard under caller deadline: want error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if took := time.Since(t0); took > 5*time.Second {
		t.Fatalf("query took %v despite 50ms caller deadline", took)
	}
	waitFor(t, 2*time.Second, func() bool { return fdb.Released() == 1 },
		"hung call released by the caller's deadline")
}

// TestFaultPartialResultFlagged: with AllowPartial, a timed-out shard is
// skipped and the response is exactly the other shards' answers, flagged
// Partial with the answered shards listed.
func TestFaultPartialResultFlagged(t *testing.T) {
	const n, hung = 4, 1
	reg := obs.NewRegistry()
	seqs := corpus(t, 48, 64, 42)
	sdb := newSharded(t, clone(seqs), n)
	q := &core.Sequence{Label: "query", Points: seqs[3].Points[8:40]}
	want := labelsOutsideShard(t, sdb, q, 0.25, hung) // baseline before faults
	fdb := NewFaultDB(sdb.Shard(hung), Fault{Hang: true})
	fdb.Cycle = true
	sdb.SetShardBackend(hung, fdb)
	sdb.SetMetrics(reg)
	sdb.SetPolicy(Policy{ShardTimeout: 50 * time.Millisecond, AllowPartial: true})

	matches, st, per, err := sdb.SearchShardsCtx(context.Background(), q, 0.25)
	if err != nil {
		t.Fatalf("partial search failed outright: %v", err)
	}
	if !st.Partial {
		t.Fatal("stats not flagged Partial")
	}
	if st.ShardsAnswered != n-1 {
		t.Fatalf("ShardsAnswered = %d, want %d", st.ShardsAnswered, n-1)
	}
	if len(per) != n-1 {
		t.Fatalf("per-shard stats for %d shards, want %d", len(per), n-1)
	}
	for _, ps := range per {
		if ps.Shard == hung {
			t.Fatalf("hung shard %d present in answered list", hung)
		}
	}
	if got := matchLabels(matches); !equalStrings(got, want) {
		t.Fatalf("partial matches = %v, want the other shards' exact answers %v", got, want)
	}
	if got := reg.Counter("mdseq_shard_partial_results_total", "").Value(); got != 1 {
		t.Fatalf("partial_results_total = %d, want 1", got)
	}
	if got := reg.Counter("mdseq_shard_deadline_hits_total", "").Value(); got == 0 {
		t.Fatal("deadline_hits_total = 0, want >= 1")
	}
}

// TestFaultRetryRecovers: a shard that fails once and then heals is
// retried and the query succeeds completely — no partial flag, and the
// retry is visible in both the FaultDB call count and the counter.
func TestFaultRetryRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	sdb, q, fdb := faultFixture(t, 4, 0, Fault{Err: errInjected})
	sdb.SetMetrics(reg)
	sdb.SetPolicy(Policy{Retries: 1, Backoff: time.Millisecond})

	matches, st, err := sdb.Search(q, 0.25)
	if err != nil {
		t.Fatalf("search with one retry budgeted: %v", err)
	}
	if st.Partial || st.ShardsAnswered != 4 {
		t.Fatalf("retried search flagged partial (%v, %d answered)", st.Partial, st.ShardsAnswered)
	}
	if fdb.Calls() != 2 {
		t.Fatalf("faulted shard saw %d calls, want 2 (original + retry)", fdb.Calls())
	}
	if got := reg.Counter("mdseq_shard_retries_total", "").Value(); got != 1 {
		t.Fatalf("retries_total = %d, want 1", got)
	}
	if len(matches) == 0 {
		t.Fatal("retried search returned no matches; fixture query should match")
	}
}

// TestFaultRetriesExhausted: failures beyond the retry budget fail the
// query (fail-fast without AllowPartial) with the injected error visible.
func TestFaultRetriesExhausted(t *testing.T) {
	sdb, q, fdb := faultFixture(t, 4, 0, Fault{Err: errInjected}, Fault{Err: errInjected})
	sdb.SetPolicy(Policy{Retries: 1, Backoff: time.Millisecond})
	if _, _, err := sdb.Search(q, 0.25); !errors.Is(err, errInjected) {
		t.Fatalf("exhausted retries: err = %v, want errInjected", err)
	}
	if fdb.Calls() != 2 {
		t.Fatalf("faulted shard saw %d calls, want 2", fdb.Calls())
	}
}

// TestFaultHedgeWinsAndCancelsPrimary: the primary wedges, the hedge
// launches after HedgeAfter, answers from the live backend, and the
// wedged primary is canceled — the query completes fast and completely,
// and the hedge race outcome lands in the counters.
func TestFaultHedgeWinsAndCancelsPrimary(t *testing.T) {
	reg := obs.NewRegistry()
	sdb, q, fdb := faultFixture(t, 4, 2, Fault{Hang: true})
	sdb.SetMetrics(reg)
	sdb.SetPolicy(Policy{ShardTimeout: 10 * time.Second, HedgeAfter: 10 * time.Millisecond})

	t0 := time.Now()
	_, st, err := sdb.Search(q, 0.25)
	took := time.Since(t0)
	if err != nil {
		t.Fatalf("hedged search failed: %v", err)
	}
	if st.Partial || st.ShardsAnswered != 4 {
		t.Fatalf("hedged search not complete: partial=%v answered=%d", st.Partial, st.ShardsAnswered)
	}
	if took > 5*time.Second {
		t.Fatalf("hedged search took %v; the hedge should beat the 10s shard timeout", took)
	}
	if fdb.Calls() != 2 {
		t.Fatalf("faulted shard saw %d calls, want 2 (primary + hedge)", fdb.Calls())
	}
	if got := reg.Counter("mdseq_shard_hedges_total", "").Value(); got != 1 {
		t.Fatalf("hedges_total = %d, want 1", got)
	}
	if got := reg.Counter("mdseq_shard_hedges_won_total", "").Value(); got != 1 {
		t.Fatalf("hedges_won_total = %d, want 1", got)
	}
	if got := reg.Counter("mdseq_shard_hedges_lost_total", "").Value(); got != 0 {
		t.Fatalf("hedges_lost_total = %d, want 0", got)
	}
	waitFor(t, 2*time.Second, func() bool { return fdb.Released() == 1 },
		"wedged primary canceled after the hedge won")
}

// TestFaultHedgeLosesCleanly: a hedge that fires but is beaten by its
// primary must not corrupt the result and must count as lost.
func TestFaultHedgeLosesCleanly(t *testing.T) {
	reg := obs.NewRegistry()
	// Primary is delayed just past HedgeAfter; the hedge is scripted to
	// hang, so the delayed primary always wins the race.
	sdb, q, _ := faultFixture(t, 4, 1, Fault{Delay: 30 * time.Millisecond}, Fault{Hang: true})
	sdb.SetMetrics(reg)
	sdb.SetPolicy(Policy{ShardTimeout: 10 * time.Second, HedgeAfter: 5 * time.Millisecond})

	_, st, err := sdb.Search(q, 0.25)
	if err != nil {
		t.Fatalf("search with losing hedge failed: %v", err)
	}
	if st.Partial || st.ShardsAnswered != 4 {
		t.Fatalf("losing hedge degraded the result: partial=%v answered=%d", st.Partial, st.ShardsAnswered)
	}
	if got := reg.Counter("mdseq_shard_hedges_total", "").Value(); got != 1 {
		t.Fatalf("hedges_total = %d, want 1", got)
	}
	if got := reg.Counter("mdseq_shard_hedges_lost_total", "").Value(); got != 1 {
		t.Fatalf("hedges_lost_total = %d, want 1", got)
	}
}

// TestFaultKNNDeadlineAndPartial: the kNN scatter honors the same policy
// — a hung shard times out, and with AllowPartial the neighbors come
// from the answered shards only.
func TestFaultKNNDeadlineAndPartial(t *testing.T) {
	const n, hung = 4, 1
	sdb, q, _ := faultFixture(t, n, hung)
	fdb := NewFaultDB(sdb.Shard(hung), Fault{Hang: true})
	fdb.Cycle = true
	sdb.SetShardBackend(hung, fdb)

	sdb.SetPolicy(Policy{ShardTimeout: 50 * time.Millisecond})
	if _, err := sdb.SearchKNN(q, 5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("kNN with hung shard: err = %v, want context.DeadlineExceeded", err)
	}

	sdb.SetPolicy(Policy{ShardTimeout: 50 * time.Millisecond, AllowPartial: true})
	nn, err := sdb.SearchKNNCtx(context.Background(), q, 5)
	if err != nil {
		t.Fatalf("partial kNN failed outright: %v", err)
	}
	if len(nn) == 0 {
		t.Fatal("partial kNN returned nothing")
	}
	for _, r := range nn {
		if sh, _ := sdb.SplitID(r.SeqID); sh == hung {
			t.Fatalf("partial kNN returned a neighbor from the hung shard %d", hung)
		}
	}
}

// TestFaultBackoffHonorsCallerDeadline: a retry loop with a long backoff
// must abandon the sleep the moment the caller's deadline fires.
func TestFaultBackoffHonorsCallerDeadline(t *testing.T) {
	sdb, q, _ := faultFixture(t, 4, 0, Fault{Err: errInjected}, Fault{Err: errInjected}, Fault{Err: errInjected})
	sdb.SetPolicy(Policy{Retries: 3, Backoff: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, _, err := sdb.SearchCtx(ctx, q, 0.25)
	if err == nil {
		t.Fatal("want error when deadline fires mid-backoff")
	}
	if took := time.Since(t0); took > 5*time.Second {
		t.Fatalf("query took %v; the 10s backoff must be cut short by the 50ms deadline", took)
	}
}

// TestFaultZeroPolicyPassThrough: an installed but scriptless FaultDB
// under the zero policy is invisible — results identical to the pristine
// database, no robustness counters advanced.
func TestFaultZeroPolicyPassThrough(t *testing.T) {
	reg := obs.NewRegistry()
	sdb, q, fdb := faultFixture(t, 4, 3)
	sdb.SetMetrics(reg)

	sdb.SetShardBackend(3, nil) // pristine baseline
	want, _, err := sdb.Search(q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	sdb.SetShardBackend(3, fdb)
	got, st, err := sdb.Search(q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(matchLabels(got), matchLabels(want)) {
		t.Fatal("pass-through FaultDB changed the answer set")
	}
	if st.Partial || st.ShardsAnswered != 4 {
		t.Fatalf("pass-through flagged partial: %v / %d", st.Partial, st.ShardsAnswered)
	}
	for _, c := range []string{
		"mdseq_shard_retries_total", "mdseq_shard_hedges_total",
		"mdseq_shard_deadline_hits_total", "mdseq_shard_partial_results_total",
	} {
		if v := reg.Counter(c, "").Value(); v != 0 {
			t.Fatalf("%s = %d under zero policy, want 0", c, v)
		}
	}
}

// TestFaultAllShardsDown: when every shard fails, AllowPartial must not
// fabricate an empty success — the query errors.
func TestFaultAllShardsDown(t *testing.T) {
	seqs := corpus(t, 16, 48, 9)
	sdb := newSharded(t, clone(seqs), 2)
	for i := 0; i < 2; i++ {
		f := NewFaultDB(sdb.Shard(i), Fault{Err: errInjected})
		f.Cycle = true
		sdb.SetShardBackend(i, f)
	}
	sdb.SetPolicy(Policy{AllowPartial: true})
	q := &core.Sequence{Label: "query", Points: seqs[0].Points[:16]}
	if _, _, err := sdb.Search(q, 0.25); !errors.Is(err, errInjected) {
		t.Fatalf("all shards down: err = %v, want errInjected", err)
	}
	if _, err := sdb.SearchKNN(q, 3); !errors.Is(err, errInjected) {
		t.Fatalf("all shards down kNN: err = %v, want errInjected", err)
	}
}

// TestFaultPartialEqualsAnsweredShardsAcrossEps sweeps thresholds to
// confirm the partial answer is always exactly the union of the answered
// shards' answers — the subset guarantee DESIGN.md documents.
func TestFaultPartialEqualsAnsweredShardsAcrossEps(t *testing.T) {
	const n, hung = 3, 0
	seqs := corpus(t, 36, 64, 11)
	sdb := newSharded(t, clone(seqs), n)
	q := &core.Sequence{Label: "query", Points: seqs[5].Points[4:36]}
	for _, eps := range []float64{0.1, 0.2, 0.35} {
		want := labelsOutsideShard(t, sdb, q, eps, hung)
		f := NewFaultDB(sdb.Shard(hung), Fault{Err: errInjected})
		sdb.SetShardBackend(hung, f)
		sdb.SetPolicy(Policy{AllowPartial: true})
		got, st, err := sdb.Search(q, eps)
		if err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
		if !st.Partial || st.ShardsAnswered != n-1 {
			t.Fatalf("eps=%g: partial=%v answered=%d", eps, st.Partial, st.ShardsAnswered)
		}
		if !equalStrings(matchLabels(got), want) {
			t.Fatalf("eps=%g: partial answer %v != answered shards' answers %v",
				eps, matchLabels(got), want)
		}
		sdb.SetShardBackend(hung, nil)
		sdb.SetPolicy(Policy{})
	}
}
