package shard

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// shardMetrics is the pre-resolved instrument set for the scatter-gather
// layer. It wraps a core.Metrics (so a sharded deployment exposes the
// same mdseq_search_* families as a single node, fed with merged stats)
// and adds the cross-shard observables a single node cannot have:
// per-shard fan-out latency, the straggler gap, and kNN bound-seeding
// effectiveness.
type shardMetrics struct {
	core *core.Metrics

	scatters *obs.Counter
	perShard []*obs.Histogram // fan-out latency, one series per shard
	strag    *obs.Histogram   // slowest − fastest shard per scatter

	knnSeeded   *obs.Counter
	knnUnseeded *obs.Counter

	// Fault-tolerance observables (see Policy): how often the robustness
	// machinery fired and how the races came out.
	retries      *obs.Counter
	hedges       *obs.Counter
	hedgesWon    *obs.Counter
	hedgesLost   *obs.Counter
	deadlineHits *obs.Counter
	partials     *obs.Counter
}

func newShardMetrics(reg *obs.Registry, n int) *shardMetrics {
	if reg == nil {
		return nil
	}
	m := &shardMetrics{
		core: core.NewMetrics(reg),
		scatters: reg.Counter("mdseq_shard_scatter_total",
			"Range searches scattered across all shards."),
		strag: reg.Histogram("mdseq_shard_straggler_gap_seconds",
			"Per-query gap between the slowest and fastest shard (queueing included) — the scatter's tail-latency tax.", nil),
		knnSeeded: reg.Counter("mdseq_shard_knn_seeded_total",
			"Per-shard kNN launches that started with a finite k-th-distance seed bound from earlier shards."),
		knnUnseeded: reg.Counter("mdseq_shard_knn_unseeded_total",
			"Per-shard kNN launches that started unseeded (bound +Inf)."),
		retries: reg.Counter("mdseq_shard_retries_total",
			"Per-shard query attempts re-run after a failure (Policy.Retries)."),
		hedges: reg.Counter("mdseq_shard_hedges_total",
			"Hedged requests launched because a shard was silent past Policy.HedgeAfter."),
		hedgesWon: reg.Counter("mdseq_shard_hedges_won_total",
			"Hedged requests that answered before the primary they raced."),
		hedgesLost: reg.Counter("mdseq_shard_hedges_lost_total",
			"Hedged requests beaten by their primary (wasted duplicate work)."),
		deadlineHits: reg.Counter("mdseq_shard_deadline_hits_total",
			"Per-shard attempts that blew the Policy.ShardTimeout budget."),
		partials: reg.Counter("mdseq_shard_partial_results_total",
			"Queries answered from fewer shards than exist (Policy.AllowPartial degradations)."),
	}
	m.perShard = make([]*obs.Histogram, n)
	for i := range m.perShard {
		m.perShard[i] = reg.Histogram("mdseq_shard_search_seconds",
			"Per-shard search latency in seconds during scatter-gather (queueing included), by shard.",
			nil, core.ShardLabel(i))
	}
	return m
}

// recordScatter folds one scattered range search into the registry:
// merged stats into the shared mdseq_search_* families, each shard's
// fan-out wall-clock into its own series, and the straggler gap. durs
// holds one entry per shard, measured from goroutine launch to result
// (so a shard queued behind the worker bound charges its wait here —
// that is the latency a caller actually experiences from the scatter).
func (m *shardMetrics) recordScatter(merged core.SearchStats, durs []time.Duration) {
	if m == nil {
		return
	}
	m.scatters.Inc()
	if merged.Partial {
		m.partials.Inc()
	}
	m.core.RecordSearch(merged)
	min, max := durs[0], durs[0]
	for i, d := range durs {
		m.perShard[i].ObserveDuration(d)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	m.strag.ObserveDuration(max - min)
}

// recordDTW folds a scattered DTW-metric query into the mdseq_dtw_*
// families. Range scatters carry the full merged pruning ladder; the
// kNN gather only counts the query (like recordKNN's refined/pruned,
// the bounded per-shard kNN calls return neighbors, not stats, so the
// ladder is a range-path observable in sharded deployments).
func (m *shardMetrics) recordDTW(knn bool, merged core.SearchStats) {
	if m == nil {
		return
	}
	m.core.RecordDTW(knn, merged.CandidatesDmbr, merged.DTWEnvPruned, merged.DTWKeoghPruned, merged.DTWEvals)
}

// recordBatchScatter folds one batched fan-out into the registry: one
// scatter (the batch is one fan-out however many queries ride in it),
// each query's merged stats into the shared mdseq_search_* families, and
// the per-shard wall-clocks once.
func (m *shardMetrics) recordBatchScatter(merged []core.SearchStats, durs []time.Duration) {
	if m == nil || len(merged) == 0 {
		return
	}
	m.scatters.Inc()
	anyPartial := false
	for _, st := range merged {
		if st.Partial {
			anyPartial = true
		}
		m.core.RecordSearch(st)
	}
	if anyPartial {
		m.partials.Inc()
	}
	min, max := durs[0], durs[0]
	for i, d := range durs {
		m.perShard[i].ObserveDuration(d)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	m.strag.ObserveDuration(max - min)
}

// recordKNN counts one gathered kNN query plus each shard launch's
// seeding outcome. Per-sequence refined/pruned counts live shard-side
// and are not returned by SearchKNNBounded, so they are reported as
// unknown (zero) here.
func (m *shardMetrics) recordKNN(d time.Duration, seeded, unseeded int) {
	if m == nil {
		return
	}
	m.core.RecordKNN(d, 0, 0)
	m.knnSeeded.Add(uint64(seeded))
	m.knnUnseeded.Add(uint64(unseeded))
}

// The fault-tolerance increments below are nil-safe so the robustness
// machinery (robustCall, hedgedAttempt) records unconditionally and an
// unwired database stays a pointer test per event.

// incRetry counts one re-run attempt.
func (m *shardMetrics) incRetry() {
	if m != nil {
		m.retries.Inc()
	}
}

// incHedge counts one hedged request launched.
func (m *shardMetrics) incHedge() {
	if m != nil {
		m.hedges.Inc()
	}
}

// hedgeOutcome records which side won a hedged race.
func (m *shardMetrics) hedgeOutcome(hedgeWon bool) {
	if m == nil {
		return
	}
	if hedgeWon {
		m.hedgesWon.Inc()
	} else {
		m.hedgesLost.Inc()
	}
}

// incDeadlineHit counts one per-shard attempt that exceeded ShardTimeout.
func (m *shardMetrics) incDeadlineHit() {
	if m != nil {
		m.deadlineHits.Inc()
	}
}

// incPartial counts one query served from fewer shards than exist.
func (m *shardMetrics) incPartial() {
	if m != nil {
		m.partials.Inc()
	}
}

// SetMetrics wires the sharded database to record into reg (nil
// detaches). Only the scatter-gather layer records: the child shards stay
// unwired so a query counts once, not once per shard — the merged stats
// carry the cross-shard sums. Shape gauges are seeded immediately.
func (s *ShardedDB) SetMetrics(reg *obs.Registry) {
	m := newShardMetrics(reg, len(s.shards))
	s.met.Store(m)
	if m != nil {
		m.core.SetShape(s.Len(), s.NumMBRs())
	}
}

// metrics returns the current recorder (nil when unwired) — an atomic
// load so SetMetrics is safe while queries are in flight.
func (s *ShardedDB) metrics() *shardMetrics {
	return s.met.Load()
}
