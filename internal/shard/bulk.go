package shard

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// segmentedBulkLoader is satisfied by nodes that can ingest an
// already-partitioned corpus without re-partitioning (*core.Database).
type segmentedBulkLoader interface {
	AddAllSegmented(segs []*core.Segmented, leaves [][]rtree.Ref) ([]uint32, error)
}

// AddAllSegmented bulk-loads a pre-partitioned, pre-placed corpus:
// groups[i] is ingested verbatim by shard i, hitting the per-shard STR
// bulk path — the zero-copy reload half of the v2 segment store, which
// persists each shard's segments separately. Placement is verified
// against the label-hash rule (ShardFor), so a group file copied across
// topologies fails closed instead of landing on the wrong shard. leaves,
// when non-nil, carries per-shard packed R*-tree leaf groupings (refs by
// position within the shard's group, exactly what core.AddAllSegmented
// validates); pass nil to let each shard tile its own leaves. All
// shards must be empty. Global ids are assigned exactly as AddAll would
// have: dense local ids interleaved by the shard-count stride.
func (s *ShardedDB) AddAllSegmented(groups [][]*core.Segmented, leaves [][][]rtree.Ref) error {
	n := len(s.shards)
	if len(groups) != n {
		return fmt.Errorf("shard: %d segment groups for %d shards", len(groups), n)
	}
	if leaves != nil && len(leaves) != n {
		return fmt.Errorf("shard: %d leaf groups for %d shards", len(leaves), n)
	}
	total := 0
	for sh, group := range groups {
		for k, g := range group {
			if g == nil || g.Seq == nil {
				return fmt.Errorf("shard: shard %d segment %d is nil", sh, k)
			}
			if ShardFor(g.Seq.Label, n) != sh {
				return fmt.Errorf("shard: sequence %q placed on shard %d, label hashes to %d",
					g.Seq.Label, sh, ShardFor(g.Seq.Label, n))
			}
		}
		total += len(group)
	}
	if total == 0 {
		return nil
	}

	errs := make([]error, n)
	sem := make(chan struct{}, scatterWorkers(n))
	var wg sync.WaitGroup
	for sh := 0; sh < n; sh++ {
		if len(groups[sh]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bl, ok := s.shards[sh].(segmentedBulkLoader)
			if !ok {
				errs[sh] = fmt.Errorf("shard: node %d cannot bulk-load segments", sh)
				return
			}
			var lv [][]rtree.Ref
			if leaves != nil {
				lv = leaves[sh]
			}
			locals, err := bl.AddAllSegmented(groups[sh], lv)
			if err != nil {
				errs[sh] = err
				return
			}
			for j, local := range locals {
				groups[sh][j].Seq.ID = s.globalID(sh, local)
			}
		}(sh)
	}
	wg.Wait()
	for sh, err := range errs {
		if err != nil {
			return fmt.Errorf("shard: shard %d: %w", sh, err)
		}
	}
	var wrote geom.Rect
	for _, group := range groups {
		for _, g := range group {
			wrote.ExtendRect(g.Bounds())
		}
	}
	s.notifyWrite(wrote)
	if m := s.metrics(); m != nil {
		m.core.RecordBulkAdd(total)
		m.core.SetShape(s.Len(), s.NumMBRs())
	}
	return nil
}
