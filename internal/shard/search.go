package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// ShardStats pairs a shard index with the statistics its local search
// produced, so callers can spot skewed shards.
type ShardStats struct {
	Shard int              // shard index within the ShardedDB
	Stats core.SearchStats // that shard's local search statistics
}

// Search runs the three-phase range search on every shard concurrently
// (bounded worker pool) and merges the answers. The result set is the
// union of the per-shard sets — identical, modulo global-id ordering, to
// a single-node search over the same corpus — returned in ascending
// global id order. Merged stats sum the per-shard counters; phase times
// are the slowest shard's (phases overlap in wall-clock).
func (s *ShardedDB) Search(q *core.Sequence, eps float64) ([]core.Match, core.SearchStats, error) {
	return s.SearchCtx(context.Background(), q, eps)
}

// SearchCtx is Search under a caller context: the deadline (or a client
// disconnect) propagates into every per-shard search, and the per-shard
// calls run under the fault-tolerance Policy in force — timeout, retry,
// hedging, and (with AllowPartial) graceful degradation to a result
// flagged Partial.
func (s *ShardedDB) SearchCtx(ctx context.Context, q *core.Sequence, eps float64) ([]core.Match, core.SearchStats, error) {
	matches, st, _, err := s.scatterSearch(ctx, q, eps, 0)
	return matches, st, err
}

// SearchParallel satisfies the single-node signature. The cross-shard
// scatter already supplies the parallelism (bounded by workers when > 0),
// so each shard runs its serial search; results equal Search exactly.
func (s *ShardedDB) SearchParallel(q *core.Sequence, eps float64, workers int) ([]core.Match, core.SearchStats, error) {
	return s.SearchParallelCtx(context.Background(), q, eps, workers)
}

// SearchParallelCtx is SearchParallel under a caller context: the
// deadline (or a client disconnect) propagates into every per-shard
// search exactly as in SearchCtx, so a parallel query can no longer
// outlive its caller.
func (s *ShardedDB) SearchParallelCtx(ctx context.Context, q *core.Sequence, eps float64, workers int) ([]core.Match, core.SearchStats, error) {
	matches, st, _, err := s.scatterSearch(ctx, q, eps, workers)
	return matches, st, err
}

// SearchShards is Search plus the per-shard statistics.
func (s *ShardedDB) SearchShards(q *core.Sequence, eps float64) ([]core.Match, core.SearchStats, []ShardStats, error) {
	return s.scatterSearch(context.Background(), q, eps, 0)
}

// SearchShardsCtx is SearchShards under a caller context (see SearchCtx).
// On a partial answer the returned slice holds only the shards that
// answered, so its Shard fields are the authoritative list of shards the
// result covers.
func (s *ShardedDB) SearchShardsCtx(ctx context.Context, q *core.Sequence, eps float64) ([]core.Match, core.SearchStats, []ShardStats, error) {
	return s.scatterSearch(ctx, q, eps, 0)
}

// searchReply carries one shard's range-search answer through robustCall.
type searchReply struct {
	matches []core.Match
	stats   core.SearchStats
}

// scatterSearch fans the query out under the current Policy and gathers.
// Shard failures either fail the query (the first failing shard's error,
// fail-fast) or — with Policy.AllowPartial — drop that shard from the
// merge and flag the result Partial. The merged stats always carry
// ShardsAnswered so callers can tell a complete answer from a degraded
// one without consulting the per-shard slice.
func (s *ShardedDB) scatterSearch(ctx context.Context, q *core.Sequence, eps float64, workers int) ([]core.Match, core.SearchStats, []ShardStats, error) {
	// Front cache: a repeated query skips the whole fan-out. The cache's
	// write-sequence counter is snapshotted here, before any shard is
	// contacted, so a write landing mid-scatter makes the entry stored
	// below unservable, never stale.
	ref := s.rangeRef(q, eps)
	tr := obs.FromContext(ctx)
	if ms, st, ps, ok := ref.get(); ok {
		if tr != nil {
			tr.RecordSpan(obs.SpanFromContext(ctx), "cache-hit", 0, obs.Str("tier", "front"))
		}
		return ms, st, ps, nil
	}
	n := len(s.shards)
	pol := s.Policy()
	met := s.metrics()
	if workers <= 0 || workers > n {
		workers = scatterWorkers(n)
	}
	// The scatter span wraps the whole fan-out; per-shard child spans (and
	// their per-attempt grandchildren from robustCall) nest under it, so a
	// retained trace of a sharded query renders as a tree: which shard
	// straggled, whether a hedge won, where each phase spent its time.
	scatterCtx, endScatter := obs.StartSpan(ctx, "scatter")
	type result struct {
		matches []core.Match
		stats   core.SearchStats
		wall    time.Duration // launch-to-result, queueing + retries included
		err     error
	}
	results := make([]result, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			sem <- struct{}{}
			defer func() { <-sem }()
			b := s.backend(i)
			shardCtx := scatterCtx
			var endShard func(...obs.Attr)
			if tr != nil {
				shardCtx, endShard = obs.StartSpan(scatterCtx, "shard")
			}
			rep, err := robustCall(shardCtx, pol, met, func(actx context.Context) (searchReply, error) {
				m, st, err := b.SearchCtx(actx, q, eps)
				return searchReply{matches: m, stats: st}, err
			})
			if endShard != nil {
				endShard(obs.Int("shard", i), obs.Bool("ok", err == nil))
			}
			results[i] = result{matches: rep.matches, stats: rep.stats, wall: time.Since(t0), err: err}
		}(i)
	}
	wg.Wait()

	var merged core.SearchStats
	perShard := make([]ShardStats, 0, n)
	var out []core.Match
	var firstErr error
	for i, r := range results {
		if r.err != nil {
			if !pol.AllowPartial {
				endScatter(obs.Int("shards", n), obs.Int("failed_shard", i))
				return nil, merged, nil, fmt.Errorf("shard: shard %d: %w", i, r.err)
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("shard: shard %d: %w", i, r.err)
			}
			continue
		}
		for _, m := range r.matches {
			m.SeqID = s.globalID(i, m.SeqID)
			out = append(out, m)
		}
		perShard = append(perShard, ShardStats{Shard: i, Stats: r.stats})
		mergeStats(&merged, r.stats)
	}
	merged.ShardsAnswered = len(perShard)
	merged.Partial = len(perShard) < n
	endScatter(obs.Int("shards", n),
		obs.Int("shards_answered", merged.ShardsAnswered),
		obs.Bool("partial", merged.Partial))
	if merged.Partial {
		tr.MarkPartial()
	}
	if len(perShard) == 0 {
		// Nothing answered: an "empty partial" would be indistinguishable
		// from a genuinely empty corpus, so total failure stays an error.
		return nil, merged, nil, firstErr
	}
	sort.Slice(out, func(a, b int) bool { return out[a].SeqID < out[b].SeqID })
	if met != nil {
		durs := make([]time.Duration, n)
		for i, r := range results {
			durs[i] = r.wall
		}
		met.recordScatter(merged, durs)
	}
	ref.put(out, merged, perShard)
	return out, merged, perShard, nil
}

// mergeStats folds one shard's stats into the merged view. On a partial
// gather only the answered shards are folded, so every rule below reads
// "over the answered shards": the pruning ratios stay exact for the
// corpus slice the answer actually covers, and Total()/CPUTime describe
// only work that contributed to the result. The gather layer — not
// mergeStats — stamps Partial and ShardsAnswered afterwards. The
// semantics, explicitly:
//
//   - Counters (TotalSequences, CandidatesDmbr, MatchesDnorm,
//     IndexEntriesHit, DnormEvals) sum — they are disjoint per-shard work,
//     so the sums keep the pruning ratios exact.
//   - Phase1..Phase3 take the per-phase MAX: the shards run concurrently,
//     so summing them would overstate wall-clock by up to a factor of N.
//     The merged Total() is therefore an upper bound on the scatter's
//     wall-clock (each phase's max may come from a different shard), never
//     the cross-shard compute sum.
//   - CPUTime sums — it is the aggregate compute the scatter consumed
//     across all shards; CPUTime/Total() reads as effective parallelism.
//   - QueryMBRs is the same on every shard (same query, same
//     partitioning), so the first answered shard's value is taken and the
//     rest are ignored. Taking it once (instead of overwriting on every
//     fold) keeps the merged value correct even if a later shard's stats
//     are zero-valued or the fold order changes.
func mergeStats(dst *core.SearchStats, st core.SearchStats) {
	if dst.QueryMBRs == 0 {
		dst.QueryMBRs = st.QueryMBRs
	}
	dst.TotalSequences += st.TotalSequences
	dst.CandidatesDmbr += st.CandidatesDmbr
	dst.MatchesDnorm += st.MatchesDnorm
	dst.IndexEntriesHit += st.IndexEntriesHit
	dst.DnormEvals += st.DnormEvals
	dst.DTWEnvPruned += st.DTWEnvPruned
	dst.DTWKeoghPruned += st.DTWKeoghPruned
	dst.DTWEvals += st.DTWEvals
	dst.QuantPruned += st.QuantPruned
	dst.CPUTime += st.CPUTime
	if st.Phase1 > dst.Phase1 {
		dst.Phase1 = st.Phase1
	}
	if st.Phase2 > dst.Phase2 {
		dst.Phase2 = st.Phase2
	}
	if st.Phase3 > dst.Phase3 {
		dst.Phase3 = st.Phase3
	}
}

// CandidatesDmbr returns the union of the per-shard phase-2 candidate
// sets, keyed by global id.
func (s *ShardedDB) CandidatesDmbr(q *core.Sequence, eps float64) (map[uint32]bool, error) {
	out := make(map[uint32]bool)
	for i, db := range s.shards {
		c, err := db.CandidatesDmbr(q, eps)
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", i, err)
		}
		for local := range c {
			out[s.globalID(i, local)] = true
		}
	}
	return out, nil
}

// SequentialSearch runs the exact scan baseline on every shard
// concurrently and merges by ascending global id.
func (s *ShardedDB) SequentialSearch(q *core.Sequence, eps float64) ([]core.ScanResult, error) {
	n := len(s.shards)
	results := make([][]core.ScanResult, n)
	errs := make([]error, n)
	sem := make(chan struct{}, scatterWorkers(n))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = s.shards[i].SequentialSearch(q, eps)
		}(i)
	}
	wg.Wait()
	var out []core.ScanResult
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", i, errs[i])
		}
		for _, r := range results[i] {
			r.SeqID = s.globalID(i, r.SeqID)
			out = append(out, r)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].SeqID < out[b].SeqID })
	return out, nil
}

// Explain runs the per-sequence decision record on every shard and merges
// the candidates under global ids, sorted ascending.
func (s *ShardedDB) Explain(q *core.Sequence, eps float64) (*core.Explanation, error) {
	var merged *core.Explanation
	for i, db := range s.shards {
		ex, err := db.Explain(q, eps)
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", i, err)
		}
		if merged == nil {
			merged = &core.Explanation{Eps: ex.Eps, QueryMBRs: ex.QueryMBRs}
		}
		for _, c := range ex.Candidates {
			c.SeqID = s.globalID(i, c.SeqID)
			merged.Candidates = append(merged.Candidates, c)
		}
	}
	sort.Slice(merged.Candidates, func(a, b int) bool {
		return merged.Candidates[a].SeqID < merged.Candidates[b].SeqID
	})
	return merged, nil
}
