package shard

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// SearchKNN scatters a k-nearest-sequences query: every shard computes
// its local top k concurrently, and the gather side merges the disjoint
// lists into the global top k (nondecreasing distance, global ids).
//
// The gather keeps a running k-th-best distance; each shard reads it as
// its refinement bound just before starting (core.SearchKNNBounded), so
// shards that begin after k results exist skip refining any sequence
// whose Dnorm lower bound already exceeds the global k-th distance. The
// seed only ever tightens a valid upper bound, so no neighbor can be
// dismissed: a pruned sequence has D > bound ≥ final k-th distance.
func (s *ShardedDB) SearchKNN(q *core.Sequence, k int) ([]core.KNNResult, error) {
	return s.SearchKNNCtx(context.Background(), q, k)
}

// SearchKNNCtx is SearchKNN under a caller context and the
// fault-tolerance Policy in force (timeout, retry, hedging — see
// SearchCtx). With Policy.AllowPartial a shard that exhausts its attempts
// is skipped: the returned neighbors are then the exact top k of the
// answered shards' corpus slice only, and — unlike a range search, whose
// partial answer is a correct subset — true global neighbors stored on
// the skipped shard are silently missing. Degraded kNN answers are
// therefore only counted in the partial-results metric, not flagged in
// the result itself; callers that must distinguish use the range-search
// path or keep AllowPartial off.
func (s *ShardedDB) SearchKNNCtx(ctx context.Context, q *core.Sequence, k int) ([]core.KNNResult, error) {
	if k <= 0 {
		return nil, nil
	}
	// Front cache: hits skip the fan-out entirely; entries hold global
	// ids and are copied out, so the in-place id rewriting below can
	// never reach a cached slice. Degraded (partial) answers are not
	// cached — see SetCache.
	ref := s.knnRef(q, k)
	if rs, ok := ref.getKNN(); ok {
		return rs, nil
	}
	t0 := time.Now()
	n := len(s.shards)
	pol := s.Policy()
	met := s.metrics()

	// gather holds the running global top k; worst() is the seed bound.
	// seeded counts shard launches that read a finite bound — the
	// bound-seeding effectiveness observable. A retried or hedged call
	// re-reads the bound at launch, so later attempts seed at least as
	// tightly as the ones they replace.
	gather := &knnGather{k: k}
	var seeded, unseeded atomic.Int64
	errs := make([]error, n)
	sem := make(chan struct{}, scatterWorkers(n))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			b := s.backend(i)
			local, err := robustCall(ctx, pol, met, func(actx context.Context) ([]core.KNNResult, error) {
				bound := gather.worst()
				if math.IsInf(bound, 1) {
					unseeded.Add(1)
				} else {
					seeded.Add(1)
				}
				return b.SearchKNNBoundedCtx(actx, q, k, bound)
			})
			if err != nil {
				errs[i] = err
				return
			}
			for j := range local {
				local[j].SeqID = s.globalID(i, local[j].SeqID)
			}
			gather.merge(local)
		}(i)
	}
	wg.Wait()
	answered := 0
	var firstErr error
	for i, err := range errs {
		if err == nil {
			answered++
			continue
		}
		if !pol.AllowPartial {
			return nil, fmt.Errorf("shard: shard %d: %w", i, err)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("shard: shard %d: %w", i, err)
		}
	}
	if answered == 0 {
		return nil, firstErr
	}
	if met != nil {
		if answered < n {
			met.incPartial()
		}
		met.recordKNN(time.Since(t0), int(seeded.Load()), int(unseeded.Load()))
	}
	out := gather.top()
	if answered == n {
		ref.putKNN(out, k, time.Since(t0))
	}
	return out, nil
}

// knnGather accumulates per-shard top-k lists into a global top k.
type knnGather struct {
	mu  sync.Mutex
	k   int
	out []core.KNNResult // sorted nondecreasing by Dist, ≤ k entries
}

// worst returns the current k-th best distance, or +Inf while fewer than
// k results have been gathered.
func (g *knnGather) worst() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.out) < g.k {
		return math.Inf(1)
	}
	return g.out[len(g.out)-1].Dist
}

func (g *knnGather) merge(rs []core.KNNResult) {
	if len(rs) == 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.out = append(g.out, rs...)
	sort.Slice(g.out, func(a, b int) bool {
		if g.out[a].Dist != g.out[b].Dist {
			return g.out[a].Dist < g.out[b].Dist
		}
		return g.out[a].SeqID < g.out[b].SeqID
	})
	if len(g.out) > g.k {
		g.out = g.out[:g.k]
	}
}

func (g *knnGather) top() []core.KNNResult {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.out
}
