package shard

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// SearchKNN scatters a k-nearest-sequences query: every shard computes
// its local top k concurrently, and the gather side merges the disjoint
// lists into the global top k (nondecreasing distance, global ids).
//
// The gather keeps a running k-th-best distance; each shard reads it as
// its refinement bound just before starting (core.SearchKNNBounded), so
// shards that begin after k results exist skip refining any sequence
// whose Dnorm lower bound already exceeds the global k-th distance. The
// seed only ever tightens a valid upper bound, so no neighbor can be
// dismissed: a pruned sequence has D > bound ≥ final k-th distance.
func (s *ShardedDB) SearchKNN(q *core.Sequence, k int) ([]core.KNNResult, error) {
	if k <= 0 {
		return nil, nil
	}
	t0 := time.Now()
	n := len(s.shards)

	// gather holds the running global top k; worst() is the seed bound.
	// seeded counts shard launches that read a finite bound — the
	// bound-seeding effectiveness observable.
	gather := &knnGather{k: k}
	var seeded atomic.Int64
	errs := make([]error, n)
	sem := make(chan struct{}, scatterWorkers(n))
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bound := gather.worst()
			if !math.IsInf(bound, 1) {
				seeded.Add(1)
			}
			local, err := s.shards[i].SearchKNNBounded(q, k, bound)
			if err != nil {
				errs[i] = err
				return
			}
			for j := range local {
				local[j].SeqID = s.globalID(i, local[j].SeqID)
			}
			gather.merge(local)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", i, err)
		}
	}
	if m := s.metrics(); m != nil {
		sd := int(seeded.Load())
		m.recordKNN(time.Since(t0), sd, n-sd)
	}
	return gather.top(), nil
}

// knnGather accumulates per-shard top-k lists into a global top k.
type knnGather struct {
	mu  sync.Mutex
	k   int
	out []core.KNNResult // sorted nondecreasing by Dist, ≤ k entries
}

// worst returns the current k-th best distance, or +Inf while fewer than
// k results have been gathered.
func (g *knnGather) worst() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.out) < g.k {
		return math.Inf(1)
	}
	return g.out[len(g.out)-1].Dist
}

func (g *knnGather) merge(rs []core.KNNResult) {
	if len(rs) == 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.out = append(g.out, rs...)
	sort.Slice(g.out, func(a, b int) bool {
		if g.out[a].Dist != g.out[b].Dist {
			return g.out[a].Dist < g.out[b].Dist
		}
		return g.out[a].SeqID < g.out[b].SeqID
	})
	if len(g.out) > g.k {
		g.out = g.out[:g.k]
	}
}

func (g *knnGather) top() []core.KNNResult {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.out
}
