package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
)

// SearchBatch answers several range queries with one scatter per shard
// instead of one per (query, shard) pair. Each query's merged answer is
// identical to what Search would return for it alone. Work is saved at
// three levels: duplicate queries collapse before the fan-out, queries
// already in the front cache never reach a shard, and each shard runs
// its own batched search over the rest — merging index probes for
// queries that share MBRs and consulting its local cache.
func (s *ShardedDB) SearchBatch(qs []*core.Sequence, eps float64) ([][]core.Match, []core.SearchStats, error) {
	return s.SearchBatchCtx(context.Background(), qs, eps)
}

// batchReply carries one shard's whole-batch answer through robustCall.
type batchReply struct {
	outs  [][]core.Match
	stats []core.SearchStats
}

// SearchBatchCtx is SearchBatch under a caller context and the
// fault-tolerance Policy in force. The per-shard calls are single units:
// a shard's timeout, retries, and hedge cover its whole batch, and with
// Policy.AllowPartial a failed shard drops out of every query's merge —
// all answers in the batch then carry Partial and the same
// ShardsAnswered. The batch is all-or-nothing on validation errors, like
// the single-node SearchBatchCtx.
func (s *ShardedDB) SearchBatchCtx(ctx context.Context, qs []*core.Sequence, eps float64) ([][]core.Match, []core.SearchStats, error) {
	if len(qs) == 0 {
		return nil, nil, nil
	}
	for i, q := range qs {
		if q == nil {
			return nil, nil, fmt.Errorf("shard: batch query %d is nil", i)
		}
	}
	n := len(s.shards)
	c := s.qcache.Load()
	// Snapshot the cache's write-sequence counter before any shard is
	// contacted: an answer gathered across a concurrent write is stored
	// under the stale snapshot and dropped by Put (see internal/cache).
	var seq uint64
	if c != nil {
		seq = c.Seq()
	}

	// Collapse duplicates; answer what the front cache already holds.
	type uq struct {
		q    *core.Sequence
		key  cache.Key
		out  []core.Match
		st   core.SearchStats
		done bool
	}
	slot := make(map[cache.Key]int, len(qs))
	assign := make([]int, len(qs))
	var uniq []*uq
	for i, q := range qs {
		key := core.RangeCacheKey(q, eps, s.opts.Partition)
		j, ok := slot[key]
		if !ok {
			j = len(uniq)
			slot[key] = j
			uniq = append(uniq, &uq{q: q, key: key})
		}
		assign[i] = j
	}
	var missQs []*core.Sequence
	var miss []*uq
	for _, u := range uniq {
		if c != nil {
			ref := scatterRef{c: c, key: u.key}
			if ms, st, _, ok := ref.get(); ok {
				u.out, u.st, u.done = ms, st, true
				continue
			}
		}
		missQs = append(missQs, u.q)
		miss = append(miss, u)
	}

	if len(miss) > 0 {
		pol := s.Policy()
		met := s.metrics()
		type result struct {
			rep  batchReply
			wall time.Duration
			err  error
		}
		results := make([]result, n)
		sem := make(chan struct{}, scatterWorkers(n))
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t0 := time.Now()
				sem <- struct{}{}
				defer func() { <-sem }()
				b := s.backend(i)
				rep, err := robustCall(ctx, pol, met, func(actx context.Context) (batchReply, error) {
					outs, stats, err := b.SearchBatchCtx(actx, missQs, eps)
					return batchReply{outs: outs, stats: stats}, err
				})
				results[i] = result{rep: rep, wall: time.Since(t0), err: err}
			}(i)
		}
		wg.Wait()

		answered := make([]int, 0, n)
		var firstErr error
		for i, r := range results {
			if r.err != nil {
				if !pol.AllowPartial {
					return nil, nil, fmt.Errorf("shard: shard %d: %w", i, r.err)
				}
				if firstErr == nil {
					firstErr = fmt.Errorf("shard: shard %d: %w", i, r.err)
				}
				continue
			}
			answered = append(answered, i)
		}
		if len(answered) == 0 {
			return nil, nil, firstErr
		}

		for j, u := range miss {
			var ps []ShardStats
			for _, i := range answered {
				r := results[i]
				// Copy matches by value while rewriting to global ids: the
				// shard's slice may be shared with its local cache.
				for _, m := range r.rep.outs[j] {
					m.SeqID = s.globalID(i, m.SeqID)
					u.out = append(u.out, m)
				}
				mergeStats(&u.st, r.rep.stats[j])
				ps = append(ps, ShardStats{Shard: i, Stats: r.rep.stats[j]})
			}
			u.st.ShardsAnswered = len(answered)
			u.st.Partial = len(answered) < n
			// Shards serve from their caches independently, so the merged
			// CacheHit flag would be ambiguous; a miss at the front counts
			// as computed.
			u.st.CacheHit = false
			sort.Slice(u.out, func(a, b int) bool { return u.out[a].SeqID < u.out[b].SeqID })
			if c != nil {
				ref := scatterRef{
					c:      c,
					key:    u.key,
					seq:    seq,
					region: cache.Region{Rect: geom.BoundingRect(u.q.Points), Radius: eps},
				}
				ref.put(u.out, u.st, ps)
			}
			u.done = true
		}

		if met != nil {
			durs := make([]time.Duration, n)
			for i, r := range results {
				durs[i] = r.wall
			}
			merged := make([]core.SearchStats, len(miss))
			for j, u := range miss {
				merged[j] = u.st
			}
			met.recordBatchScatter(merged, durs)
		}
	}

	outs := make([][]core.Match, len(qs))
	stats := make([]core.SearchStats, len(qs))
	seen := make([]bool, len(uniq))
	for i, j := range assign {
		u := uniq[j]
		outs[i] = u.out
		stats[i] = u.st
		if seen[j] {
			stats[i].CacheHit = true // duplicate: served without compute
		}
		seen[j] = true
	}
	return outs, stats, nil
}
