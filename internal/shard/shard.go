// Package shard scales the single-node sequence database horizontally:
// a ShardedDB hash-partitions sequences over N independent core.Database
// instances — each with its own R*-tree, pager, and lock — and answers
// queries by scattering the paper's filter-and-refine pipeline across
// shards and gathering the per-shard results.
//
// Placement is by label: shard(S) = FNV-1a(S.Label) mod N. The rule is a
// pure function of the label and the shard count, so it is stable across
// restarts — reloading a saved corpus into a ShardedDB with the same N
// reproduces the placement exactly, and a router in front of several
// processes can compute it independently.
//
// Correctness is inherited, not re-proved: every shard runs the unmodified
// single-node algorithm over a disjoint subset of the corpus, and a range
// query's answer set is the union of the per-shard answer sets (Lemmas 1–3
// apply within each shard; no cross-shard pruning decision is ever made).
// kNN gathers per-shard top-k lists and merges to the global top k,
// optionally seeding later-starting shards with the running k-th distance
// as a tighter refinement bound (see SearchKNN).
//
// The query path is fault-tolerant under a Policy: context deadlines
// propagate from the caller through the scatter into every per-shard
// search, each shard call gets a per-attempt timeout with bounded
// retry-and-backoff and an optional hedged second request for
// stragglers, and — with Policy.AllowPartial — a shard that exhausts its
// attempts is skipped and the merged answer is flagged partial
// (SearchStats.Partial, SearchStats.ShardsAnswered) instead of failing
// the whole query. Per-shard calls go through the Backend interface so
// the FaultDB harness can inject latency, errors, and hangs
// deterministically in tests. The zero Policy reproduces the original
// fail-fast scatter exactly.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
)

// ErrNoShards is returned when a ShardedDB is created with fewer than one
// shard.
var ErrNoShards = errors.New("shard: shard count must be >= 1")

// ShardedDB presents N independent single-node databases as one. All
// methods are safe for concurrent use; writes to different shards never
// contend on a lock.
// Node is one shard's full database: the serving surface (DB), the
// query-path Backend, and the shard-internal hooks the router needs.
// *core.Database satisfies it, and so does a transactional wrapper
// (internal/txn) — NewWithNodes assembles a ShardedDB from either, so a
// durable deployment swaps in WAL-backed per-shard nodes without the
// router changing. Per-shard writes then commit on independent
// committers: a write to one shard never blocks reads — or writes — on
// any other.
type Node interface {
	DB
	Backend
	// PartitionConfig reports the MCOST segmentation settings in force.
	PartitionConfig() core.PartitionConfig
	// CandidatesDmbr runs only phases 1+2 and returns the candidate set.
	CandidatesDmbr(q *core.Sequence, eps float64) (map[uint32]bool, error)
}

var _ Node = (*core.Database)(nil)

// ShardedDB routes writes to per-sequence home shards and scatters
// queries across all of them, merging per-shard results into the same
// answers a single database holding every sequence would return. It
// satisfies the same DB surface as *core.Database, so the serving layer
// is topology-blind.
type ShardedDB struct {
	shards []Node
	opts   core.Options
	met    atomic.Pointer[shardMetrics] // nil until SetMetrics
	pol    atomic.Pointer[Policy]       // nil until SetPolicy (zero policy)

	// epoch counts completed writes at the router; qcache (nil until
	// SetCache) is the merged-result cache in front of the scatter. Every
	// router write notifies it with the written sequence's MBR, so only
	// gathered answers the write could have affected are invalidated
	// (see internal/cache).
	epoch  atomic.Uint64
	qcache atomic.Pointer[cache.Cache]

	bmu      sync.RWMutex
	backends []Backend // per-shard query targets; default the shards themselves
}

// New creates a ShardedDB of n empty shards, each configured with opts.
// With opts.Path set, shard i stores its index pages in
// "<path>.shard<i>" (a single shard uses the path verbatim, so a 1-shard
// database is file-compatible with core.NewDatabase).
func New(opts core.Options, n int) (*ShardedDB, error) {
	if n < 1 {
		return nil, ErrNoShards
	}
	s := &ShardedDB{shards: make([]Node, n), opts: opts}
	for i := range s.shards {
		so := opts
		if opts.Path != "" && n > 1 {
			so.Path = fmt.Sprintf("%s.shard%d", opts.Path, i)
		}
		db, err := core.NewDatabase(so)
		if err != nil {
			for _, d := range s.shards[:i] {
				d.Close()
			}
			return nil, fmt.Errorf("shard: opening shard %d: %w", i, err)
		}
		s.shards[i] = db
	}
	s.backends = make([]Backend, n)
	for i, db := range s.shards {
		s.backends[i] = db
	}
	return s, nil
}

// NewWithNodes assembles a ShardedDB over caller-built per-shard nodes —
// the durability hook: hand it N transactional (internal/txn) databases
// and the scatter-gather, placement, caching, and fault-tolerance
// machinery runs unchanged on top of MVCC snapshot reads and WAL-backed
// commits. All nodes must agree on dimensionality. The ShardedDB takes
// ownership: Close closes every node.
func NewWithNodes(nodes []Node) (*ShardedDB, error) {
	if len(nodes) < 1 {
		return nil, ErrNoShards
	}
	dim := nodes[0].Dim()
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("shard: node %d is nil", i)
		}
		if n.Dim() != dim {
			return nil, fmt.Errorf("shard: node %d has dim %d, node 0 has %d", i, n.Dim(), dim)
		}
	}
	s := &ShardedDB{
		shards: append([]Node(nil), nodes...),
		opts:   core.Options{Dim: dim, Partition: nodes[0].PartitionConfig()},
	}
	s.backends = make([]Backend, len(nodes))
	for i, n := range s.shards {
		s.backends[i] = n
	}
	return s, nil
}

// SetShardBackend substitutes shard i's query backend (nil restores the
// shard's own database). The substitution affects only the query path —
// Search/SearchKNN scatters — never writes or lookups. It exists for the
// fault-injection harness (FaultDB) and tests; a production deployment
// leaves the defaults in place. Safe to call while queries are in flight.
func (s *ShardedDB) SetShardBackend(i int, b Backend) {
	s.bmu.Lock()
	defer s.bmu.Unlock()
	if b == nil {
		b = s.shards[i]
	}
	s.backends[i] = b
}

// backend returns shard i's current query target.
func (s *ShardedDB) backend(i int) Backend {
	s.bmu.RLock()
	defer s.bmu.RUnlock()
	return s.backends[i]
}

// ShardFor returns the shard index the placement rule assigns to label.
func ShardFor(label string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(label))
	return int(h.Sum32() % uint32(n))
}

// Shards returns the number of shards.
func (s *ShardedDB) Shards() int { return len(s.shards) }

// Shard exposes shard i's underlying node (for stats and tests).
func (s *ShardedDB) Shard(i int) Node { return s.shards[i] }

// Dim returns the dimensionality every stored sequence must have.
func (s *ShardedDB) Dim() int { return s.opts.Dim }

// PartitionConfig returns the partitioning settings in force.
func (s *ShardedDB) PartitionConfig() core.PartitionConfig {
	return s.shards[0].PartitionConfig()
}

// --- id mapping ---------------------------------------------------------
//
// Each shard assigns its own dense local ids; the public id interleaves
// them as global = local*N + shard. The mapping is a bijection, keeps
// global ids stable as other shards grow, and makes routing a lookup-free
// mod/div.

func (s *ShardedDB) globalID(shard int, local uint32) uint32 {
	return local*uint32(len(s.shards)) + uint32(shard)
}

// SplitID decomposes a global sequence id into (shard, local id).
func (s *ShardedDB) SplitID(global uint32) (shard int, local uint32) {
	n := uint32(len(s.shards))
	return int(global % n), global / n
}

// --- writes -------------------------------------------------------------

// Add routes the sequence to its label's shard and returns the global id.
// As with core.Database.Add, the database keeps a reference to seq.
func (s *ShardedDB) Add(seq *core.Sequence) (uint32, error) {
	t0 := time.Now()
	sh := ShardFor(seq.Label, len(s.shards))
	local, err := s.shards[sh].Add(seq)
	if err != nil {
		return 0, err
	}
	seq.ID = s.globalID(sh, local)
	s.notifyWrite(geom.BoundingRect(seq.Points))
	if m := s.metrics(); m != nil {
		m.core.RecordAdd(time.Since(t0))
		m.core.SetShape(s.Len(), s.NumMBRs())
	}
	return seq.ID, nil
}

// AddAll bulk-loads a corpus: sequences are grouped by placement and each
// shard ingests its group concurrently (bounded by GOMAXPROCS), hitting
// the per-shard STR bulk-load path when the shard is empty. Returned
// global ids are in input order.
func (s *ShardedDB) AddAll(seqs []*core.Sequence) ([]uint32, error) {
	if len(seqs) == 0 {
		return nil, nil
	}
	n := len(s.shards)
	groups := make([][]*core.Sequence, n)
	positions := make([][]int, n) // positions[sh][j] = input index of groups[sh][j]
	for i, seq := range seqs {
		sh := ShardFor(seq.Label, n)
		groups[sh] = append(groups[sh], seq)
		positions[sh] = append(positions[sh], i)
	}

	ids := make([]uint32, len(seqs))
	errs := make([]error, n)
	sem := make(chan struct{}, scatterWorkers(n))
	var wg sync.WaitGroup
	for sh := 0; sh < n; sh++ {
		if len(groups[sh]) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			locals, err := s.shards[sh].AddAll(groups[sh])
			if err != nil {
				errs[sh] = err
				return
			}
			for j, local := range locals {
				g := s.globalID(sh, local)
				groups[sh][j].ID = g
				ids[positions[sh][j]] = g
			}
		}(sh)
	}
	wg.Wait()
	for sh, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: shard %d: %w", sh, err)
		}
	}
	// One region notification covers the whole batch.
	var wrote geom.Rect
	for _, seq := range seqs {
		wrote.ExtendRect(geom.BoundingRect(seq.Points))
	}
	s.notifyWrite(wrote)
	if m := s.metrics(); m != nil {
		m.core.RecordBulkAdd(len(seqs))
		m.core.SetShape(s.Len(), s.NumMBRs())
	}
	return ids, nil
}

// Remove deletes the sequence with the given global id.
func (s *ShardedDB) Remove(global uint32) error {
	sh, local := s.SplitID(global)
	// Capture the victim's bounds before it disappears; an unexpectedly
	// missing directory entry degrades to the empty rect, which the
	// cache treats as "unknown extent — invalidate everything".
	var wrote geom.Rect
	if g := s.shards[sh].Segmented(local); g != nil {
		wrote = g.Bounds()
	}
	if err := s.shards[sh].Remove(local); err != nil {
		if errors.Is(err, core.ErrUnknownSequence) {
			return fmt.Errorf("%w: %d", core.ErrUnknownSequence, global)
		}
		return err
	}
	s.notifyWrite(wrote)
	if m := s.metrics(); m != nil {
		m.core.SetShape(s.Len(), s.NumMBRs())
	}
	return nil
}

// AppendPoints extends the sequence with the given global id (streaming
// ingestion; see core.Database.AppendPoints).
func (s *ShardedDB) AppendPoints(global uint32, pts []geom.Point) error {
	sh, local := s.SplitID(global)
	if err := s.shards[sh].AppendPoints(local, pts); err != nil {
		if errors.Is(err, core.ErrUnknownSequence) {
			return fmt.Errorf("%w: %d", core.ErrUnknownSequence, global)
		}
		return err
	}
	// Post-append bounds cover the pre-append ones (points are only
	// added), so the extended sequence's MBR is the write region. A
	// concurrent writer to the same id is covered by its own
	// notification; a missing entry degrades to invalidate-everything.
	var wrote geom.Rect
	if g := s.shards[sh].Segmented(local); g != nil {
		wrote = g.Bounds()
	}
	s.notifyWrite(wrote)
	return nil
}

// --- reads --------------------------------------------------------------

// Segmented returns the stored (sequence, partitioning) pair for a global
// id, or nil when the id is unknown.
func (s *ShardedDB) Segmented(global uint32) *core.Segmented {
	sh, local := s.SplitID(global)
	return s.shards[sh].Segmented(local)
}

// Sequences returns the live sequences, ordered by shard then local id.
// Their ID fields hold global ids.
func (s *ShardedDB) Sequences() []*core.Sequence {
	var out []*core.Sequence
	for _, db := range s.shards {
		out = append(out, db.Sequences()...)
	}
	return out
}

// Len returns the number of stored sequences across all shards.
func (s *ShardedDB) Len() int {
	total := 0
	for _, db := range s.shards {
		total += db.Len()
	}
	return total
}

// NumMBRs returns the total number of indexed partition MBRs.
func (s *ShardedDB) NumMBRs() int {
	total := 0
	for _, db := range s.shards {
		total += db.NumMBRs()
	}
	return total
}

// ShardLens returns each shard's live sequence count — the placement
// balance observable.
func (s *ShardedDB) ShardLens() []int {
	out := make([]int, len(s.shards))
	for i, db := range s.shards {
		out[i] = db.Len()
	}
	return out
}

// IndexHeight returns the tallest per-shard R*-tree height.
func (s *ShardedDB) IndexHeight() int {
	max := 0
	for _, db := range s.shards {
		if h := db.IndexHeight(); h > max {
			max = h
		}
	}
	return max
}

// IndexFanout returns the R*-tree node capacity in force (identical on
// every shard — they share one configuration).
func (s *ShardedDB) IndexFanout() int { return s.shards[0].IndexFanout() }

// Flush persists every shard's dirty index pages.
func (s *ShardedDB) Flush() error {
	for i, db := range s.shards {
		if err := db.Flush(); err != nil {
			return fmt.Errorf("shard: flushing shard %d: %w", i, err)
		}
	}
	return nil
}

// Close releases every shard's index storage, returning the first error.
func (s *ShardedDB) Close() error {
	var first error
	for i, db := range s.shards {
		if err := db.Close(); err != nil && first == nil {
			first = fmt.Errorf("shard: closing shard %d: %w", i, err)
		}
	}
	return first
}

// scatterWorkers bounds fan-out concurrency: one goroutine per shard, but
// never more than the machine can run.
func scatterWorkers(n int) int {
	if p := runtime.GOMAXPROCS(0); n > p {
		return p
	}
	return n
}
