package shard

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

// metricCorpus generates labeled random walks with deliberately unequal
// lengths so DTW window edge cases appear across shards.
func metricCorpus(t testing.TB, n int, seed int64) []*core.Sequence {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seqs := make([]*core.Sequence, n)
	for i := range seqs {
		length := 25 + rng.Intn(80)
		pts := make([]geom.Point, length)
		p := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		for j := range pts {
			q := make(geom.Point, 3)
			for k := range q {
				q[k] = clamp01(p[k] + (rng.Float64()-0.5)*0.08)
			}
			pts[j] = q
			p = q
		}
		seqs[i] = &core.Sequence{Label: fmt.Sprintf("seq-%03d", i), Points: pts}
	}
	return seqs
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// TestShardedMetricRangeMatchesSingle: the scattered DTW range search
// equals the single-node answer (labels + bit-identical distances) and
// the sharded exhaustive scan, across shard counts and windows.
func TestShardedMetricRangeMatchesSingle(t *testing.T) {
	seqs := metricCorpus(t, 40, 51)
	single := newSingle(t, clone(seqs))
	for _, nsh := range []int{2, 5} {
		sdb := newSharded(t, clone(seqs), nsh)
		for _, window := range []int{-1, 3} {
			mt := core.MetricDTW{Window: window}
			q := &core.Sequence{Label: "q", Points: seqs[4].Points[:20]}
			const eps = 0.4
			want, _, err := single.SearchMetric(q, eps, mt)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := sdb.SearchMetric(q, eps, mt)
			if err != nil {
				t.Fatal(err)
			}
			scan, err := sdb.SequentialSearchMetric(q, eps, mt)
			if err != nil {
				t.Fatal(err)
			}
			for name, res := range map[string][]core.MetricMatch{"scatter": got, "scan": scan} {
				if len(res) != len(want) {
					t.Fatalf("shards=%d window=%d %s: %d matches, want %d", nsh, window, name, len(res), len(want))
				}
				wantByLabel := map[string]float64{}
				for _, m := range want {
					wantByLabel[m.Seq.Label] = m.Dist
				}
				for _, m := range res {
					wd, ok := wantByLabel[m.Seq.Label]
					if !ok {
						t.Fatalf("shards=%d window=%d %s: unexpected match %s", nsh, window, name, m.Seq.Label)
					}
					if math.Float64bits(m.Dist) != math.Float64bits(wd) {
						t.Fatalf("shards=%d window=%d %s: %s dist %v, want bit-identical %v",
							nsh, window, name, m.Seq.Label, m.Dist, wd)
					}
				}
			}
			// Global-id ascending order is part of the contract.
			if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a].SeqID < got[b].SeqID }) {
				t.Fatalf("shards=%d window=%d: scattered matches not id-ascending", nsh, window)
			}
		}
	}
}

// TestShardedMetricKNNMatchesSingle: the bound-seeded scattered DTW kNN
// returns the same neighbor set (by label, bit-identical distances) as a
// single-node database over the same corpus.
func TestShardedMetricKNNMatchesSingle(t *testing.T) {
	seqs := metricCorpus(t, 40, 57)
	single := newSingle(t, clone(seqs))
	for _, nsh := range []int{2, 5} {
		sdb := newSharded(t, clone(seqs), nsh)
		for _, window := range []int{-1, 6} {
			mt := core.MetricDTW{Window: window}
			q := &core.Sequence{Label: "q", Points: seqs[7].Points[:22]}
			const k = 7
			want, err := single.SearchKNNMetric(q, k, mt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sdb.SearchKNNMetric(q, k, mt)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("shards=%d window=%d: %d neighbors, want %d", nsh, window, len(got), len(want))
			}
			key := func(rs []core.KNNResult) []string {
				out := make([]string, len(rs))
				for i, r := range rs {
					out[i] = fmt.Sprintf("%s:%x", r.Seq.Label, math.Float64bits(r.Dist))
				}
				sort.Strings(out)
				return out
			}
			gk, wk := key(got), key(want)
			for i := range wk {
				if gk[i] != wk[i] {
					t.Fatalf("shards=%d window=%d: neighbor sets differ:\n got %v\nwant %v", nsh, window, gk, wk)
				}
			}
			// Distances must be served in nondecreasing order.
			if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a].Dist < got[b].Dist }) {
				t.Fatalf("shards=%d window=%d: gathered neighbors not distance-sorted", nsh, window)
			}
		}
	}
}

// TestShardedMetricFrontCache: the scatter front cache memoizes metric
// range and kNN answers per metric identity — a repeat under the same
// metric hits, a different window misses.
func TestShardedMetricFrontCache(t *testing.T) {
	seqs := metricCorpus(t, 30, 61)
	sdb := newSharded(t, clone(seqs), 3)
	sdb.SetCache(cache.New(cache.Config{}))
	q := &core.Sequence{Label: "q", Points: seqs[2].Points[:18]}
	const eps = 0.4

	first, st1, err := sdb.SearchMetric(q, eps, core.MetricDTW{Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit {
		t.Fatal("first metric scatter flagged as cache hit")
	}
	again, st2, err := sdb.SearchMetric(q, eps, core.MetricDTW{Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("repeat metric scatter missed the front cache")
	}
	if len(again) != len(first) {
		t.Fatalf("cached scatter has %d matches, computed had %d", len(again), len(first))
	}
	if _, st3, err := sdb.SearchMetric(q, eps, core.MetricDTW{Window: 2}); err != nil {
		t.Fatal(err)
	} else if st3.CacheHit {
		t.Fatal("different window served from the other window's entry")
	}

	nn1, err := sdb.SearchKNNMetric(q, 5, core.MetricDTW{Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	nn2, err := sdb.SearchKNNMetric(q, 5, core.MetricDTW{Window: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(nn1) != len(nn2) {
		t.Fatalf("cached kNN gather differs: %d vs %d", len(nn2), len(nn1))
	}
	for i := range nn1 {
		if nn1[i].SeqID != nn2[i].SeqID || math.Float64bits(nn1[i].Dist) != math.Float64bits(nn2[i].Dist) {
			t.Fatalf("cached kNN neighbor %d differs", i)
		}
	}
}

// TestShardedMetricDTWCounters: a wired ShardedDB reports DTW queries
// into the mdseq_dtw_* families — the scatter layer must forward the
// merged pruning ladder, since child shards are deliberately unwired.
func TestShardedMetricDTWCounters(t *testing.T) {
	seqs := metricCorpus(t, 30, 67)
	sdb := newSharded(t, clone(seqs), 3)
	reg := obs.NewRegistry()
	sdb.SetMetrics(reg)
	q := &core.Sequence{Label: "q", Points: seqs[5].Points[:20]}

	if _, st, err := sdb.SearchMetric(q, 0.4, core.MetricDTW{Window: -1}); err != nil {
		t.Fatal(err)
	} else if st.CandidatesDmbr == 0 {
		t.Fatal("workload produced no candidates; the counter assertion below is vacuous")
	}
	if _, err := sdb.SearchKNNMetric(q, 3, core.MetricDTW{Window: -1}); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("mdseq_dtw_search_total", "").Value(); got != 1 {
		t.Fatalf("mdseq_dtw_search_total = %d, want 1", got)
	}
	if got := reg.Counter("mdseq_dtw_knn_total", "").Value(); got != 1 {
		t.Fatalf("mdseq_dtw_knn_total = %d, want 1", got)
	}
	if got := reg.Counter("mdseq_dtw_candidates_total", "").Value(); got == 0 {
		t.Fatal("mdseq_dtw_candidates_total stayed 0 after a sharded DTW range search")
	}
	pruned := reg.Counter("mdseq_dtw_env_pruned_total", "").Value() +
		reg.Counter("mdseq_dtw_keogh_pruned_total", "").Value()
	evals := reg.Counter("mdseq_dtw_evals_total", "").Value()
	if pruned+evals == 0 {
		t.Fatal("no DTW candidate was counted as pruned or evaluated")
	}

	// A D-metric query must leave the DTW families untouched.
	if _, _, err := sdb.SearchMetric(q, 0.4, core.MetricD{}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("mdseq_dtw_search_total", "").Value(); got != 1 {
		t.Fatalf("mdseq_dtw_search_total = %d after a D query, want still 1", got)
	}
}
