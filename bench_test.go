// Benchmarks mapping one-to-one onto the paper's evaluation artifacts
// (Table 2, Figures 6-10) plus ablations of the Section 3.4.3 design
// choices. Each figure bench exercises exactly the operation whose cost
// the figure reports, on a scaled-down Table 2 workload; the full-scale
// numbers recorded in EXPERIMENTS.md come from cmd/mdsbench.
//
// Run with: go test -bench=. -benchmem
package mdseq_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	mdseq "repro"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/fractal"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/video"
)

// benchScale shrinks the Table 2 corpora so `go test -bench` stays fast.
const benchScale = 16

var (
	benchOnce sync.Once
	synBench  *experiment.Bench
	vidBench  *experiment.Bench
)

func setupBenches(b *testing.B) (*experiment.Bench, *experiment.Bench) {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		synBench, err = experiment.Build(experiment.PaperSynthetic().Scaled(benchScale))
		if err != nil {
			panic(err)
		}
		vidBench, err = experiment.Build(experiment.PaperVideo().Scaled(benchScale))
		if err != nil {
			panic(err)
		}
	})
	return synBench, vidBench
}

// BenchmarkTable2BuildSynthetic measures corpus generation plus index
// construction for the (scaled) synthetic workload of Table 2.
func BenchmarkTable2BuildSynthetic(b *testing.B) {
	cfg := experiment.PaperSynthetic().Scaled(benchScale * 4)
	for i := 0; i < b.N; i++ {
		bench, err := experiment.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bench.Close()
	}
}

// BenchmarkTable2BuildVideo is the video counterpart, including frame
// rendering and feature extraction.
func BenchmarkTable2BuildVideo(b *testing.B) {
	cfg := experiment.PaperVideo().Scaled(benchScale * 4)
	for i := 0; i < b.N; i++ {
		bench, err := experiment.Build(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bench.Close()
	}
}

// benchSearch runs the three-phase search for every query at eps.
func benchSearch(b *testing.B, bench *experiment.Bench, eps float64) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := bench.Queries[i%len(bench.Queries)]
		if _, _, err := bench.DB.Search(q, eps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6PruningSynthetic measures the pruned search whose
// effectiveness Figure 6 reports (synthetic corpus, mid threshold).
func BenchmarkFig6PruningSynthetic(b *testing.B) {
	syn, _ := setupBenches(b)
	benchSearch(b, syn, 0.20)
}

// BenchmarkFig7PruningVideo is Figure 7's counterpart on video data.
func BenchmarkFig7PruningVideo(b *testing.B) {
	_, vid := setupBenches(b)
	benchSearch(b, vid, 0.20)
}

// BenchmarkFig8SolutionIntervalSynthetic measures search plus solution
// interval assembly and consumption (Figure 8's subject) on synthetic
// data.
func BenchmarkFig8SolutionIntervalSynthetic(b *testing.B) {
	syn, _ := setupBenches(b)
	var points int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := syn.Queries[i%len(syn.Queries)]
		matches, _, err := syn.DB.Search(q, 0.20)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range matches {
			points += m.Interval.NumPoints()
		}
	}
	_ = points
}

// BenchmarkFig9SolutionIntervalVideo is Figure 9's counterpart.
func BenchmarkFig9SolutionIntervalVideo(b *testing.B) {
	_, vid := setupBenches(b)
	var points int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := vid.Queries[i%len(vid.Queries)]
		matches, _, err := vid.DB.Search(q, 0.20)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range matches {
			points += m.Interval.NumPoints()
		}
	}
	_ = points
}

// BenchmarkFig10ProposedSynthetic and BenchmarkFig10ScanSynthetic are the
// two sides of Figure 10's ratio: the proposed index search vs the
// sequential scan, on identical queries. Dividing their ns/op reproduces
// the figure's series at this scale.
func BenchmarkFig10ProposedSynthetic(b *testing.B) {
	syn, _ := setupBenches(b)
	benchSearch(b, syn, 0.20)
}

func BenchmarkFig10ScanSynthetic(b *testing.B) {
	syn, _ := setupBenches(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := syn.Queries[i%len(syn.Queries)]
		if _, err := syn.DB.SequentialSearch(q, 0.20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10ProposedVideo(b *testing.B) {
	_, vid := setupBenches(b)
	benchSearch(b, vid, 0.20)
}

func BenchmarkFig10ScanVideo(b *testing.B) {
	_, vid := setupBenches(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := vid.Queries[i%len(vid.Queries)]
		if _, err := vid.DB.SequentialSearch(q, 0.20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMCost sweeps the partitioning constant Q_k+ε whose
// value (0.3) Section 3.4.3 fixes empirically: it measures partitioning
// cost at each setting.
func BenchmarkAblationMCost(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	seqs := make([]*core.Sequence, 50)
	for i := range seqs {
		s, err := fractal.Generate(rng, 256, fractal.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		seqs[i] = s
	}
	for _, qe := range []float64{0.1, 0.3, 0.9} {
		b.Run(fmt.Sprintf("qe=%.1f", qe), func(b *testing.B) {
			cfg := core.PartitionConfig{QueryExtent: qe, MaxPoints: 64}
			for i := 0; i < b.N; i++ {
				if _, err := core.Partition(seqs[i%len(seqs)], cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFanout measures index range-search latency across
// R*-tree node capacities.
func BenchmarkAblationFanout(b *testing.B) {
	for _, fanout := range []int{8, 32, 0 /* page-derived max */} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			db, err := mdseq.Open(mdseq.Options{Dim: 3, MaxEntries: fanout})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			rng := rand.New(rand.NewSource(6))
			for i := 0; i < 200; i++ {
				s, err := fractal.Generate(rng, 128, fractal.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				if _, err := db.Add(s); err != nil {
					b.Fatal(err)
				}
			}
			q, err := fractal.Generate(rng, 48, fractal.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.CandidatesDmbr(q, 0.15); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- scale-out: scatter-gather over hash shards -------------------------

// setupSharded distributes the (scaled) synthetic corpus over n shards.
func setupSharded(b *testing.B, n int) (*mdseq.ShardedDB, []*core.Sequence) {
	b.Helper()
	syn, _ := setupBenches(b)
	seqs := syn.DB.Sequences()
	cloned := make([]*core.Sequence, len(seqs))
	for i, s := range seqs {
		cloned[i] = s.Clone()
	}
	sdb, err := mdseq.OpenSharded(mdseq.Options{Dim: 3}, n)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { sdb.Close() })
	if _, err := sdb.AddAll(cloned); err != nil {
		b.Fatal(err)
	}
	return sdb, syn.Queries
}

// BenchmarkShardedSearch compares range-search latency across shard
// counts on the same corpus — the scale-out trajectory for BENCH_*.json.
// shards=1 approximates the single-node baseline plus dispatch overhead.
func BenchmarkShardedSearch(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			sdb, queries := setupSharded(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, _, err := sdb.Search(q, 0.20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedKNN is the kNN counterpart: per-shard top-k with
// running-bound seeding, then the gather-side merge.
func BenchmarkShardedKNN(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			sdb, queries := setupSharded(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if _, err := sdb.SearchKNN(q, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- observability: registry overhead on the hot path -------------------

// BenchmarkSearchInstrumentation runs the identical three-phase search
// at three instrumentation levels: bare, with a metrics registry wired
// in, and with the full flight-recorder path (a per-query trace through
// SearchCtx plus recorder retention). Metrics are pre-resolved atomic
// operations, so instrumented must stay within ~2% of bare — the
// always-on budget. traced measures what a request pays only when a
// trace rides its context (span records and the retention snapshot);
// that cost is per-request opt-in, not part of the always-on budget,
// and is reported here so regressions in it are visible too.
func BenchmarkSearchInstrumentation(b *testing.B) {
	syn, _ := setupBenches(b)
	seqs := syn.DB.Sequences()
	cloned := make([]*core.Sequence, len(seqs))
	for i, s := range seqs {
		cloned[i] = s.Clone()
	}
	for _, mode := range []string{"bare", "instrumented", "traced"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			db, err := mdseq.Open(mdseq.Options{Dim: 3})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if _, err := db.AddAll(cloned); err != nil {
				b.Fatal(err)
			}
			if mode != "bare" {
				db.SetMetrics(mdseq.NewMetricsRegistry())
			}
			rec := obs.NewRecorder(obs.RecorderConfig{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := syn.Queries[i%len(syn.Queries)]
				if mode == "traced" {
					tr := obs.NewTrace()
					rec.Start(tr)
					ctx := obs.WithTrace(context.Background(), tr)
					if _, _, err := db.SearchCtx(ctx, q, 0.20); err != nil {
						b.Fatal(err)
					}
					rec.End(tr)
					continue
				}
				if _, _, err := db.Search(q, 0.20); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- micro-benchmarks of the primitives the figures are built from ---

func BenchmarkDmbr(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	rects := make([]geom.Rect, 256)
	for i := range rects {
		lo := geom.Point{rng.Float64() * 0.8, rng.Float64() * 0.8, rng.Float64() * 0.8}
		hi := geom.Point{lo[0] + 0.1, lo[1] + 0.1, lo[2] + 0.1}
		rects[i] = geom.Rect{L: lo, H: hi}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rects[i%256].MinDist(rects[(i+1)%256])
	}
}

func BenchmarkDnormSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	s, err := fractal.Generate(rng, 512, fractal.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	g, err := core.NewSegmented(s, core.DefaultPartitionConfig())
	if err != nil {
		b.Fatal(err)
	}
	q, err := fractal.Generate(rng, 64, fractal.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	qr := geom.BoundingRect(q.Points)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.MinDnorm(qr, q.Len(), g)
	}
}

func BenchmarkPartition(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	s, err := fractal.Generate(rng, 512, fractal.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultPartitionConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Partition(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequenceDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	s1, _ := fractal.Generate(rng, 512, fractal.DefaultConfig())
	s2, _ := fractal.Generate(rng, 64, fractal.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.D(s1, s2)
	}
}

func BenchmarkRTreeInsert(b *testing.B) {
	db, err := mdseq.Open(mdseq.Options{Dim: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := fractal.Generate(rng, 64, fractal.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := db.Add(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVideoFeatureExtraction(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	st, err := video.GenerateStream(rng, 64, video.DefaultStreamConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = video.MeanColorRGB(st.Frames[i%len(st.Frames)])
	}
}
