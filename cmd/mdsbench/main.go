// Command mdsbench regenerates the paper's evaluation. Each -exp value
// reproduces one figure of Section 4 (or an ablation of a Section 3.4.3
// design choice, or one of this reproduction's extension experiments) and
// prints the corresponding series.
//
//	mdsbench -list                      # Table 2 parameters per workload
//	mdsbench -exp fig6                  # pruning rates, synthetic
//	mdsbench -exp fig7                  # pruning rates, video
//	mdsbench -exp fig8                  # solution interval, synthetic
//	mdsbench -exp fig9                  # solution interval, video
//	mdsbench -exp fig10                 # response-time ratio, both
//	mdsbench -exp ablation-mcost        # Q_k+ε sweep (paper fixes 0.3)
//	mdsbench -exp ablation-maxpts       # per-MBR point cap sweep
//	mdsbench -exp ablation-fanout       # R*-tree fanout sweep
//	mdsbench -exp ablation-dim          # dimensionality sweep
//	mdsbench -exp noise                 # query-noise sensitivity
//	mdsbench -exp iocost                # index page IO per query
//	mdsbench -exp scalability           # corpus-size sweep
//	mdsbench -exp all                   # figures 6-10
//
// -scale N shrinks the corpus and query count by N for quick runs; the
// recorded EXPERIMENTS.md numbers use -scale 1 (the default).
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	if err := cli.Bench(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdsbench:", err)
		os.Exit(1)
	}
}
