// Command mdsgen generates sequence datasets (the paper's Table 2
// corpora) and writes them in the binary or CSV format cmd/mdsquery reads.
//
// Usage:
//
//	mdsgen -kind fractal -count 1600 -o synthetic.mds
//	mdsgen -kind video   -count 1408 -o video.mds
//	mdsgen -kind video   -count 100  -o video.csv   # CSV by extension
//	mdsgen -kind fractal -dump            # print one sequence (Figure 4)
//	mdsgen -kind video   -dump            # print one sequence (Figure 5)
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	if err := cli.Gen(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdsgen:", err)
		os.Exit(1)
	}
}
