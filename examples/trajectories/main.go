// Trajectories indexes 2-D vehicle paths (normalized GPS tracks) and
// finds vehicles that drove a similar route segment — multidimensional
// sequence search in a domain the paper's model covers but its evaluation
// does not: each point is a (x, y) position, each sequence a trip. Run
// with:
//
//	go run ./examples/trajectories
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	mdseq "repro"
)

func main() {
	db, err := mdseq.Open(mdseq.Options{Dim: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(66))

	// A small "road network": a few corridors vehicles tend to follow.
	corridors := make([][]mdseq.Point, 4)
	for i := range corridors {
		corridors[i] = corridor(rng, 80+rng.Intn(60))
	}

	// Vehicles: each follows one corridor with personal noise and speed,
	// plus some free-roaming vehicles.
	byCorridor := map[int][]uint32{}
	for v := 0; v < 40; v++ {
		var trip *mdseq.Sequence
		var c int
		if v%4 == 3 {
			c = -1
			trip = &mdseq.Sequence{Label: fmt.Sprintf("veh-%02d(free)", v), Points: corridor(rng, 100)}
		} else {
			c = v % len(corridors)
			trip = &mdseq.Sequence{
				Label:  fmt.Sprintf("veh-%02d(corridor-%d)", v, c),
				Points: followPath(rng, corridors[c], 0.015),
			}
		}
		id, err := db.Add(trip)
		if err != nil {
			log.Fatal(err)
		}
		if c >= 0 {
			byCorridor[c] = append(byCorridor[c], id)
		}
	}
	fmt.Printf("indexed %d trips as %d MBRs\n", db.Len(), db.NumMBRs())

	// Query: a stretch of corridor 2.
	qPts := followPath(rng, corridors[2], 0.01)[20:60]
	query := &mdseq.Sequence{Label: "route-query", Points: qPts}
	const eps = 0.05
	matches, stats, err := db.Search(query, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwho drove this %d-point stretch of corridor 2? (eps=%.2f, %d candidates)\n",
		query.Len(), eps, stats.CandidatesDmbr)
	hits, misses := 0, 0
	onC2 := map[uint32]bool{}
	for _, id := range byCorridor[2] {
		onC2[id] = true
	}
	for _, m := range matches {
		fmt.Printf("  %-22s matched at %v\n", m.Seq.Label, m.Interval.String())
		if onC2[m.SeqID] {
			hits++
		} else {
			misses++
		}
	}
	fmt.Printf("\n%d of %d corridor-2 vehicles found, %d other matches\n",
		hits, len(byCorridor[2]), misses)
}

// corridor generates a smooth 2-D path through the unit square.
func corridor(rng *rand.Rand, n int) []mdseq.Point {
	pts := make([]mdseq.Point, n)
	x, y := rng.Float64(), rng.Float64()
	heading := rng.Float64() * 2 * math.Pi
	for i := range pts {
		heading += (rng.Float64() - 0.5) * 0.4
		x = clamp01(x + 0.012*math.Cos(heading))
		y = clamp01(y + 0.012*math.Sin(heading))
		pts[i] = mdseq.Point{x, y}
	}
	return pts
}

// followPath replays a path with per-point jitter (GPS noise + lane
// variation).
func followPath(rng *rand.Rand, path []mdseq.Point, noise float64) []mdseq.Point {
	out := make([]mdseq.Point, len(path))
	for i, p := range path {
		out[i] = mdseq.Point{
			clamp01(p[0] + noise*(rng.Float64()*2-1)),
			clamp01(p[1] + noise*(rng.Float64()*2-1)),
		}
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
