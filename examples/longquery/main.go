// Longquery demonstrates the paper's "long query" case (Section 1): the
// query sequence is LONGER than the stored data sequences — "Find video
// streams in a database to which the sub-streams of a given video are
// similar." Definition 3 handles this by sliding the shorter side (here,
// each data sequence) inside the longer query. Run with:
//
//	go run ./examples/longquery
package main

import (
	"fmt"
	"log"
	"math/rand"

	mdseq "repro"
	"repro/internal/fractal"
	"repro/internal/geom"
)

func main() {
	db, err := mdseq.Open(mdseq.Options{Dim: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(321))

	// Short clips in the database.
	var clips []*mdseq.Sequence
	for i := 0; i < 30; i++ {
		clip, err := fractal.Generate(rng, 30+rng.Intn(30), fractal.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		clip.Label = fmt.Sprintf("clip-%02d", i)
		clips = append(clips, clip)
	}
	if _, err := db.AddAll(clips); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d short clips (30-60 points each)\n", db.Len())

	// A long query stream that contains noisy copies of clips 5 and 21.
	var qpts []geom.Point
	appendNoisy := func(src *mdseq.Sequence) (start, end int) {
		start = len(qpts)
		for _, p := range src.Points {
			q := p.Clone()
			for k := range q {
				q[k] += (rng.Float64() - 0.5) * 0.02
			}
			qpts = append(qpts, q.Clamp(0, 1))
		}
		return start, len(qpts)
	}
	pad := func(n int) {
		filler, err := fractal.Generate(rng, n, fractal.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		qpts = append(qpts, filler.Points...)
	}
	pad(120)
	a0, a1 := appendNoisy(clips[5])
	pad(150)
	b0, b1 := appendNoisy(clips[21])
	pad(100)
	query := &mdseq.Sequence{Label: "long-stream", Points: qpts}
	fmt.Printf("query: %d points — longer than every stored clip\n", query.Len())
	fmt.Printf("embedded clip-05 at [%d,%d) and clip-21 at [%d,%d)\n\n", a0, a1, b0, b1)

	const eps = 0.05
	matches, stats, err := db.Search(query, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search (eps=%.2f): %d candidates -> %d matches\n", eps, stats.CandidatesDmbr, stats.MatchesDnorm)
	for _, m := range matches {
		d := mdseq.D(query, m.Seq)
		fmt.Printf("  %s  D(query, clip)=%.4f\n", m.Seq.Label, d)
	}

	// Cross-check with the exact scan.
	exact, err := db.SequentialSearch(query, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsequential scan agrees on %d relevant clips:\n", len(exact))
	for _, r := range exact {
		off, _ := mdseq.BestAlignment(r.Seq.Points, query.Points)
		fmt.Printf("  %s matches the query around offset %d (embedded at %d / %d)\n",
			r.Seq.Label, off, a0, b0)
	}
}
