// Streaming demonstrates live ingestion: video frames arrive in batches,
// each batch is appended to its stream's stored sequence (repartitioning
// only the tail), and a standing query — "alert me when something similar
// to this scene appears" — runs after every batch. Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	mdseq "repro"
	"repro/internal/video"
)

func main() {
	db, err := mdseq.Open(mdseq.Options{Dim: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(777))
	cfg := video.DefaultStreamConfig()

	// Render a "future broadcast" up front so we know where the scene of
	// interest will eventually appear; the database sees it only in
	// batches.
	const totalFrames = 600
	broadcast, err := video.GenerateStream(rng, totalFrames, cfg)
	if err != nil {
		log.Fatal(err)
	}
	features := video.ExtractSequence(broadcast, video.MeanColorRGB)

	// The standing query: one full shot from the middle of the broadcast.
	shotIdx := len(broadcast.ShotStarts) / 2
	sStart := broadcast.ShotStarts[shotIdx]
	sEnd := totalFrames
	if shotIdx+1 < len(broadcast.ShotStarts) {
		sEnd = broadcast.ShotStarts[shotIdx+1]
	}
	watch := &mdseq.Sequence{Label: "watched-scene", Points: features.Points[sStart:sEnd]}
	fmt.Printf("standing query: %d-frame scene that will air at frames [%d,%d)\n\n",
		watch.Len(), sStart, sEnd)

	// Ingest in 50-frame batches, querying after each.
	const batch = 50
	first := &mdseq.Sequence{Label: "live-feed", Points: features.Points[:batch]}
	id, err := db.Add(first)
	if err != nil {
		log.Fatal(err)
	}
	alerted := false
	for off := batch; off < totalFrames; off += batch {
		end := off + batch
		if end > totalFrames {
			end = totalFrames
		}
		if err := db.AppendPoints(id, features.Points[off:end]); err != nil {
			log.Fatal(err)
		}
		matches, _, err := db.Search(watch, 0.04)
		if err != nil {
			log.Fatal(err)
		}
		status := "no match yet"
		for _, m := range matches {
			if m.SeqID == id {
				status = fmt.Sprintf("MATCH at frame ranges %v", m.Interval.String())
				if !alerted {
					fmt.Printf("batch ending at frame %4d: first alert — %s\n", end, status)
					alerted = true
				}
			}
		}
		if !alerted {
			fmt.Printf("batch ending at frame %4d: %s\n", end, status)
		}
	}

	g := db.Segmented(id)
	fmt.Printf("\nfinal stream: %d frames in %d MBRs; scene aired at [%d,%d)\n",
		g.Seq.Len(), len(g.MBRs), sStart, sEnd)
	if !alerted {
		fmt.Println("WARNING: the scene was never detected")
	}
}
