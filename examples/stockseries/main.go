// Stockseries shows the time-series special case (Section 1: "Identify
// companies whose stock prices show similar movements"): 1-D price series
// are embedded into multidimensional sequences with a sliding window plus
// DFT dimensionality reduction, then searched like any other
// multidimensional sequence. Run with:
//
//	go run ./examples/stockseries
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	mdseq "repro"
	"repro/internal/transform"
)

const (
	window  = 16 // sliding-window width w
	dftDims = 3  // DFT magnitudes kept per window
	days    = 500
)

func main() {
	db, err := mdseq.Open(mdseq.Options{Dim: dftDims})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Synthesize a sector of correlated tickers plus independent ones.
	rng := rand.New(rand.NewSource(1929))
	sectorTrend := trend(rng, days)
	prices := map[string][]float64{}
	for i := 0; i < 6; i++ {
		prices[fmt.Sprintf("SEC%d", i)] = followTrend(rng, sectorTrend, 0.15)
	}
	for i := 0; i < 24; i++ {
		prices[fmt.Sprintf("IND%d", i)] = followTrend(rng, trend(rng, days), 0.15)
	}

	labels := map[uint32]string{}
	for ticker, series := range prices {
		seq, err := transform.SlidingWindowDFT(transform.Normalize(series), window, dftDims)
		if err != nil {
			log.Fatal(err)
		}
		seq.Label = ticker
		id, err := db.Add(seq)
		if err != nil {
			log.Fatal(err)
		}
		labels[id] = ticker
	}
	fmt.Printf("indexed %d tickers (%d trading days each, w=%d, %d DFT dims)\n",
		len(prices), days, window, dftDims)

	// Query: the last quarter of SEC0's movements.
	qSeries := transform.Normalize(prices["SEC0"])[days-90:]
	query, err := transform.SlidingWindowDFT(qSeries, window, dftDims)
	if err != nil {
		log.Fatal(err)
	}
	const eps = 0.03
	matches, stats, err := db.Search(query, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntickers moving like SEC0's last quarter (eps=%.2f, %d candidates):\n",
		eps, stats.CandidatesDmbr)
	sector, indep := 0, 0
	for _, m := range matches {
		fmt.Printf("  %-5s minDnorm=%.4f match windows=%v\n", m.Seq.Label, m.MinDnorm, m.Interval.String())
		if len(m.Seq.Label) >= 3 && m.Seq.Label[:3] == "SEC" {
			sector++
		} else {
			indep++
		}
	}
	fmt.Printf("\n%d sector / %d independent tickers matched — correlated movements found\n", sector, indep)
}

// trend draws a smooth random log-price path.
func trend(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	v, momentum := 0.0, 0.0
	for i := range out {
		momentum = 0.9*momentum + 0.1*(rng.Float64()-0.5)
		v += momentum
		out[i] = v
	}
	return out
}

// followTrend produces a series tracking a trend with idiosyncratic noise.
func followTrend(rng *rand.Rand, t []float64, noise float64) []float64 {
	out := make([]float64, len(t))
	for i := range out {
		out[i] = t[i] + noise*math.Sin(float64(i)/9+rng.Float64()) + noise*(rng.Float64()-0.5)
	}
	return out
}
