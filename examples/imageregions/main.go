// Imageregions demonstrates the paper's second data model (Section 1):
// an image raster is segmented into a grid of regions, each region reduced
// to a mean-color feature vector, and the regions ordered along a Hilbert
// curve to form a multidimensional sequence. Region-level similarity
// search then answers "find all images in a database that contain regions
// similar to regions of a given image." Run with:
//
//	go run ./examples/imageregions
package main

import (
	"fmt"
	"log"
	"math/rand"

	mdseq "repro"
	"repro/internal/curve"
	"repro/internal/image"
)

const (
	imgSide  = 64 // raster pixels per side
	gridSide = 16 // regions per side -> 256 regions per image
)

func main() {
	db, err := mdseq.Open(mdseq.Options{Dim: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Synthesize a corpus of images and index their region sequences.
	rng := rand.New(rand.NewSource(99))
	rasters := make([]*image.Raster, 60)
	var sequences []*mdseq.Sequence
	for i := range rasters {
		r, err := image.Synthesize(rng, image.SynthConfig{W: imgSide, H: imgSide})
		if err != nil {
			log.Fatal(err)
		}
		rasters[i] = r
		seq, err := image.ToSequence(r, gridSide, curve.HilbertOrder)
		if err != nil {
			log.Fatal(err)
		}
		seq.Label = fmt.Sprintf("img-%02d", i)
		if _, err := db.Add(seq); err != nil {
			log.Fatal(err)
		}
		sequences = append(sequences, seq)
	}
	fmt.Printf("indexed %d images (%dx%d rasters, %d hilbert-ordered regions each) as %d MBRs\n",
		len(rasters), imgSide, imgSide, gridSide*gridSide, db.NumMBRs())

	// Query with a quadrant crop of image 30, segmented the same way. The
	// Hilbert curve keeps a quadrant's regions contiguous, so the crop's
	// sequence matches a run inside the full image's sequence.
	crop, err := rasters[30].Crop(0, 0, imgSide/2, imgSide/2)
	if err != nil {
		log.Fatal(err)
	}
	patch, err := image.ToSequence(crop, gridSide/2, curve.HilbertOrder)
	if err != nil {
		log.Fatal(err)
	}
	patch.Label = "crop-of-img-30"
	fmt.Printf("query: top-left quadrant of img-30 (%d regions)\n\n", patch.Len())

	const eps = 0.04
	matches, stats, err := db.Search(patch, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d of %d images contain similar region runs (eps=%.2f, %d Dmbr candidates)\n",
		stats.MatchesDnorm, stats.TotalSequences, eps, stats.CandidatesDmbr)
	for _, m := range matches {
		marker := ""
		if m.SeqID == sequences[30].ID {
			marker = "  <- source image"
		}
		fmt.Printf("  %s: region ranges %v%s\n", m.Seq.Label, m.Interval.String(), marker)
	}

	// Show why the Hilbert order matters: the same image in row-major
	// order fragments spatial patches into more, looser MBRs.
	cfg := mdseq.DefaultPartitionConfig()
	h, _ := image.ToSequence(rasters[30], gridSide, curve.HilbertOrder)
	r, _ := image.ToSequence(rasters[30], gridSide, curve.RowMajor)
	hm, _ := mdseq.Partition(h, cfg)
	rm, _ := mdseq.Partition(r, cfg)
	fmt.Printf("\nlocality check on img-30: %d MBRs in hilbert order vs %d in row-major\n",
		len(hm), len(rm))
}
