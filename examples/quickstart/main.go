// Quickstart: store a handful of multidimensional sequences, run one
// similarity query, and print the matches with the sub-ranges where they
// match. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	mdseq "repro"
)

func main() {
	db, err := mdseq.Open(mdseq.Options{Dim: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Store 50 random-walk sequences (stand-ins for any feature streams).
	rng := rand.New(rand.NewSource(7))
	var sequences []*mdseq.Sequence
	for i := 0; i < 50; i++ {
		s := randomWalk(rng, fmt.Sprintf("stream-%02d", i), 120+rng.Intn(200))
		if _, err := db.Add(s); err != nil {
			log.Fatal(err)
		}
		sequences = append(sequences, s)
	}
	fmt.Printf("indexed %d sequences as %d MBRs (R*-tree height %d)\n",
		db.Len(), db.NumMBRs(), db.IndexHeight())

	// Query with a subsequence of stream-20, slightly perturbed.
	src := sequences[20]
	qpts := make([]mdseq.Point, 40)
	for i := range qpts {
		p := src.Points[30+i].Clone()
		for k := range p {
			p[k] += (rng.Float64() - 0.5) * 0.01
		}
		qpts[i] = p
	}
	query, err := mdseq.NewSequence("query", qpts)
	if err != nil {
		log.Fatal(err)
	}

	const eps = 0.08
	matches, stats, err := db.Search(query, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: %d points, eps=%.2f\n", query.Len(), eps)
	fmt.Printf("phase 1 partitioned the query into %d MBRs\n", stats.QueryMBRs)
	fmt.Printf("phase 2 (Dmbr over the index) kept %d of %d sequences\n",
		stats.CandidatesDmbr, stats.TotalSequences)
	fmt.Printf("phase 3 (Dnorm) kept %d\n\n", stats.MatchesDnorm)

	for _, m := range matches {
		fmt.Printf("match %-10s minDnorm=%.4f  matching ranges: %v\n",
			m.Seq.Label, m.MinDnorm, m.Interval.String())
	}

	// Verify against the exact baseline.
	exact, err := db.SequentialSearch(query, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsequential scan agrees: %d relevant sequence(s)\n", len(exact))
	for _, r := range exact {
		fmt.Printf("  %-10s D=%.4f exact ranges: %v\n", r.Seq.Label, r.Dist, r.Interval.String())
	}
}

func randomWalk(rng *rand.Rand, label string, n int) *mdseq.Sequence {
	pts := make([]mdseq.Point, n)
	cur := mdseq.Point{rng.Float64(), rng.Float64(), rng.Float64()}
	for i := range pts {
		next := make(mdseq.Point, 3)
		for k := range next {
			v := cur[k] + (rng.Float64()-0.5)*0.06
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			next[k] = v
		}
		pts[i], cur = next, next
	}
	s, err := mdseq.NewSequence(label, pts)
	if err != nil {
		panic(err)
	}
	return s
}
