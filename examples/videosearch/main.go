// Videosearch demonstrates the paper's motivating use case: index a
// library of video streams by per-frame color features, query with a short
// scene, and play back only the matching sub-streams — "we do not need to
// browse the whole stream of a selected video, but just browse the
// sub-streams found by the process."
//
// Frames are synthesized and rendered as rasters, then reduced to mean-RGB
// feature points, exercising the full extraction pipeline. Run with:
//
//	go run ./examples/videosearch
package main

import (
	"fmt"
	"log"
	"math/rand"

	mdseq "repro"
	"repro/internal/video"
)

func main() {
	db, err := mdseq.Open(mdseq.Options{Dim: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Build a small library of synthetic "programs".
	rng := rand.New(rand.NewSource(2000))
	cfg := video.DefaultStreamConfig()
	var library []entry
	for i := 0; i < 40; i++ {
		frames := 150 + rng.Intn(250)
		st, err := video.GenerateStream(rng, frames, cfg)
		if err != nil {
			log.Fatal(err)
		}
		seq := video.ExtractSequence(st, video.MeanColorRGB)
		seq.Label = fmt.Sprintf("program-%02d", i)
		if _, err := db.Add(seq); err != nil {
			log.Fatal(err)
		}
		library = append(library, entry{st, seq})
	}
	fmt.Printf("library: %d programs, %d frames total, indexed as %d MBRs\n",
		len(library), totalFrames(library), db.NumMBRs())

	// The "scene we remember": one shot from program-25.
	target := library[25]
	shot := 2
	start := target.stream.ShotStarts[shot]
	end := target.seq.Len()
	if shot+1 < len(target.stream.ShotStarts) {
		end = target.stream.ShotStarts[shot+1]
	}
	scene := &mdseq.Sequence{Label: "scene", Points: target.seq.Points[start:end]}
	fmt.Printf("\nquery scene: %s frames [%d,%d) — %d frames\n",
		target.seq.Label, start, end, scene.Len())

	const eps = 0.05
	matches, stats, err := db.Search(scene, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search: %d candidates after Dmbr, %d programs matched (eps=%.2f)\n\n",
		stats.CandidatesDmbr, stats.MatchesDnorm, eps)

	for _, m := range matches {
		fmt.Printf("%s — play only these frame ranges:\n", m.Seq.Label)
		for _, r := range m.Interval.Ranges() {
			secFrom, secTo := float64(r.Start)/25, float64(r.End)/25 // 25 fps
			fmt.Printf("  frames [%4d,%4d)  ≈ %5.1fs–%5.1fs\n", r.Start, r.End, secFrom, secTo)
		}
		if m.SeqID == target.seq.ID {
			covered := m.Interval.Contains(start) && m.Interval.Contains(end-1)
			fmt.Printf("  (source shot covered by the solution interval: %v)\n", covered)
		}
	}
}

type entry struct {
	stream *video.Stream
	seq    *mdseq.Sequence
}

func totalFrames(lib []entry) int {
	var n int
	for _, e := range lib {
		n += e.seq.Len()
	}
	return n
}
